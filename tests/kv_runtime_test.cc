// End-to-end correctness tests of the shared KV runtime: preload, the batch
// task implementations, deferred reclamation and the direct API.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/cuckoo_hash_table.h"
#include "pipeline/kv_runtime.h"
#include "pipeline/pipeline_config.h"
#include "net/sim_nic.h"

namespace dido {
namespace {

KvRuntime::Options SmallRuntime() {
  KvRuntime::Options options;
  options.slab.arena_bytes = 8 << 20;
  options.index.num_buckets = 1 << 14;
  return options;
}

std::string KeyFor(uint64_t index, uint32_t key_size) {
  std::string key(key_size, '\0');
  MaterializeKey(index, key_size, reinterpret_cast<uint8_t*>(key.data()));
  return key;
}

std::string ValueFor(uint64_t index, uint32_t value_size, uint32_t version) {
  std::string value(value_size, '\0');
  MaterializeValue(index, value_size, version,
                   reinterpret_cast<uint8_t*>(value.data()));
  return value;
}

// Builds a batch from explicit queries and runs it through `config`'s task
// order, exactly as the executor would.
BatchMeasurements RunFullBatch(KvRuntime& runtime, const PipelineConfig& config,
                               TrafficSource& source, size_t target_queries,
                               QueryBatch* out = nullptr) {
  QueryBatch batch;
  batch.config = config;
  size_t queries = 0;
  while (queries < target_queries) {
    Frame frame;
    queries += source.FillFrame(&frame, nullptr);
    batch.frames.push_back(std::move(frame));
  }
  EXPECT_TRUE(runtime.RunPacketProcessing(&batch).ok());
  for (const StageSpec& stage : config.Stages(4)) {
    for (TaskKind task : stage.tasks) {
      if (task == TaskKind::kRv || task == TaskKind::kPp ||
          task == TaskKind::kSd) {
        continue;
      }
      runtime.RunRangeTask(task, &batch, 0, batch.size());
    }
  }
  runtime.RetireBatch(&batch);
  BatchMeasurements m = batch.measurements;
  if (out != nullptr) *out = std::move(batch);
  return m;
}

TEST(KvRuntimeTest, PreloadStoresRequestedObjects) {
  KvRuntime runtime(SmallRuntime());
  const uint64_t stored = runtime.Preload(DatasetK16(), 10000);
  EXPECT_EQ(stored, 10000u);
  EXPECT_EQ(runtime.live_objects(), 10000u);
  // Spot-check contents via the direct API.
  Result<std::string> value = runtime.GetValue(KeyFor(1234, 16));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, ValueFor(1234, 64, 0));
}

TEST(KvRuntimeTest, PreloadStopsAtMemoryCapacity) {
  KvRuntime::Options options = SmallRuntime();
  options.slab.arena_bytes = 1 << 20;
  KvRuntime runtime(options);
  const uint64_t stored = runtime.Preload(DatasetK128(), 1 << 20);
  EXPECT_GT(stored, 100u);
  EXPECT_LT(stored, 2000u);  // 1 MB / ~1.2 KB objects
}

TEST(KvRuntimeTest, DirectApiRoundTrip) {
  KvRuntime runtime(SmallRuntime());
  EXPECT_TRUE(runtime.Put("k1", "v1").ok());
  EXPECT_TRUE(runtime.Put("k2", "v2").ok());
  EXPECT_EQ(runtime.GetValue("k1").value(), "v1");
  EXPECT_TRUE(runtime.Put("k1", "v1b").ok());  // overwrite
  EXPECT_EQ(runtime.GetValue("k1").value(), "v1b");
  EXPECT_EQ(runtime.live_objects(), 2u);
  EXPECT_TRUE(runtime.DeleteKey("k1").ok());
  EXPECT_FALSE(runtime.GetValue("k1").ok());
  EXPECT_EQ(runtime.DeleteKey("k1").code(), StatusCode::kNotFound);
}

class BatchPipelineTest
    : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(BatchPipelineTest, BatchGetsReturnCorrectValues) {
  const PipelineConfig config = GetParam();
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK16(), 5000);
  ASSERT_EQ(objects, 5000u);

  WorkloadSpec spec = MakeWorkload(DatasetK16(), 100, KeyDistribution::kZipf);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);

  QueryBatch batch;
  const BatchMeasurements m =
      RunFullBatch(runtime, config, source, 2000, &batch);
  EXPECT_GE(m.num_queries, 2000u);
  EXPECT_EQ(m.gets, m.num_queries);
  EXPECT_EQ(m.hits, m.gets);  // all preloaded keys must hit
  EXPECT_EQ(m.misses, 0u);

  // Every GET record must have found the right object.
  for (const QueryRecord& record : batch.queries) {
    ASSERT_EQ(record.status, ResponseStatus::kOk);
    ASSERT_NE(record.object, nullptr);
    EXPECT_EQ(record.object->Key(), record.key);
  }
}

TEST_P(BatchPipelineTest, BatchSetsProduceInsertAndDelete) {
  const PipelineConfig config = GetParam();
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK16(), 5000);
  WorkloadSpec spec = MakeWorkload(DatasetK16(), 50, KeyDistribution::kUniform);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);

  const BatchMeasurements m = RunFullBatch(runtime, config, source, 2000);
  EXPECT_GT(m.sets, 800u);
  // Every SET inserts a new version and unlinks the old one — the paper's
  // Insert+Delete pair (Section II-C2).
  EXPECT_EQ(m.inserts, m.sets);
  EXPECT_NEAR(static_cast<double>(m.deletes), static_cast<double>(m.sets),
              static_cast<double>(m.sets) * 0.02);
  // Store size is steady: overwrites don't grow the index.
  EXPECT_EQ(runtime.live_objects(), objects);
}

TEST_P(BatchPipelineTest, SetsVisibleToLaterBatches) {
  const PipelineConfig config = GetParam();
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK16(), 3000);
  WorkloadSpec spec = MakeWorkload(DatasetK16(), 50, KeyDistribution::kUniform);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);
  for (int i = 0; i < 3; ++i) RunFullBatch(runtime, config, source, 1500);

  // Every stored key must still be reachable and well-formed.
  for (uint64_t i = 0; i < objects; i += 97) {
    const std::string key = KeyFor(i, 16);
    Result<std::string> value = runtime.GetValue(key);
    ASSERT_TRUE(value.ok()) << "key index " << i;
    EXPECT_EQ(value->size(), 64u);
  }
  EXPECT_EQ(runtime.live_objects(), objects);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatchPipelineTest,
    ::testing::Values(
        PipelineConfig::MegaKv(),
        // DIDO's preferred read-intensive pipeline: [IN.S,KC,RD] on GPU.
        PipelineConfig{/*gpu_begin=*/3, /*gpu_end=*/6, Device::kCpu,
                       Device::kCpu, true, false},
        // RD/WR split across devices (staging path).
        PipelineConfig{/*gpu_begin=*/3, /*gpu_end=*/5, Device::kGpu,
                       Device::kGpu, true, false},
        // Pure CPU.
        PipelineConfig{/*gpu_begin=*/4, /*gpu_end=*/4, Device::kCpu,
                       Device::kCpu, false, false}),
    [](const ::testing::TestParamInfo<PipelineConfig>& info) {
      return "cut" + std::to_string(info.param.gpu_begin) + "_" +
             std::to_string(info.param.gpu_end) + "_ins" +
             (info.param.insert_device == Device::kCpu ? "c" : "g");
    });

TEST(KvRuntimeTest, StagingPathMatchesDirectPath) {
  // When RD and WR are in different stages the value travels through the
  // staging buffer; response contents must be identical either way.
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK32(), 1000);
  WorkloadSpec spec = MakeWorkload(DatasetK32(), 100, KeyDistribution::kUniform);

  auto collect_responses = [&](const PipelineConfig& config) {
    WorkloadGenerator generator(spec, objects, 9);
    TrafficSource source(&generator);
    QueryBatch batch;
    RunFullBatch(runtime, config, source, 500, &batch);
    std::map<std::string, std::string> responses;
    for (const Frame& frame : batch.responses) {
      size_t offset = 0;
      while (offset < frame.payload.size()) {
        ResponseView view;
        EXPECT_TRUE(DecodeResponse(frame.payload.data(), frame.payload.size(),
                                   &offset, &view)
                        .ok());
        responses[std::string(view.key)] = std::string(view.value);
      }
    }
    return responses;
  };

  PipelineConfig staged;  // RD on GPU, WR on CPU
  staged.gpu_begin = 3;
  staged.gpu_end = 6;
  const auto direct = collect_responses(PipelineConfig::MegaKv());
  const auto via_staging = collect_responses(staged);
  ASSERT_FALSE(direct.empty());
  ASSERT_FALSE(via_staging.empty());
  // Same generator seed -> same keys; values must agree.
  EXPECT_EQ(direct, via_staging);
}

TEST(KvRuntimeTest, ResponsesCoverEveryQuery) {
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK16(), 2000);
  WorkloadSpec spec = MakeWorkload(DatasetK16(), 95, KeyDistribution::kZipf);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);
  QueryBatch batch;
  const BatchMeasurements m =
      RunFullBatch(runtime, PipelineConfig::MegaKv(), source, 1000, &batch);
  size_t responses = 0;
  for (const Frame& frame : batch.responses) {
    size_t offset = 0;
    while (offset < frame.payload.size()) {
      ResponseView view;
      ASSERT_TRUE(DecodeResponse(frame.payload.data(), frame.payload.size(),
                                 &offset, &view)
                      .ok());
      EXPECT_LE(frame.payload.size(), kMaxFramePayload);
      if (view.op == QueryOp::kGet) {
        EXPECT_EQ(view.status, ResponseStatus::kOk);
        EXPECT_EQ(view.value.size(), 64u);
      } else {
        EXPECT_EQ(view.status, ResponseStatus::kStored);
      }
      ++responses;
    }
  }
  EXPECT_EQ(responses, m.num_queries);
}

TEST(KvRuntimeTest, DeferredFreesKeepMemoryStable) {
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK8(), 20000);
  WorkloadSpec spec = MakeWorkload(DatasetK8(), 50, KeyDistribution::kUniform);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);
  const uint64_t live_before = runtime.live_objects();
  for (int i = 0; i < 5; ++i) {
    RunFullBatch(runtime, PipelineConfig::MegaKv(), source, 2000);
    EXPECT_EQ(runtime.live_objects(), live_before);
  }
  // Allocator-level leak check.  Mid-run, allocations - frees equals
  // live + quarantined (replaced versions wait out the epoch); after a
  // full drain the quarantine term goes to zero and the classic equality
  // must hold.
  EXPECT_EQ(runtime.epoch().ReclaimAll(), 0u);
  const MemoryManager::Counters& counters = runtime.memory().counters();
  EXPECT_EQ(counters.allocations - counters.frees, live_before);
}

TEST(KvRuntimeTest, ExplicitDeleteQueries) {
  KvRuntime runtime(SmallRuntime());
  runtime.Preload(DatasetK16(), 100);
  // Hand-build a frame with DELETE queries.
  QueryBatch batch;
  batch.config = PipelineConfig::MegaKv();
  Frame frame;
  const std::string key5 = KeyFor(5, 16);
  const std::string key6 = KeyFor(6, 16);
  const std::string ghost = KeyFor(100000, 16);
  EncodeRequest(QueryOp::kDelete, key5, "", &frame.payload);
  EncodeRequest(QueryOp::kDelete, key6, "", &frame.payload);
  EncodeRequest(QueryOp::kDelete, ghost, "", &frame.payload);
  batch.frames.push_back(std::move(frame));
  ASSERT_TRUE(runtime.RunPacketProcessing(&batch).ok());
  runtime.RunIndexDelete(&batch, 0, batch.size());
  runtime.RunWriteResponse(&batch, 0, batch.size());
  runtime.RetireBatch(&batch);
  EXPECT_EQ(batch.queries[0].status, ResponseStatus::kDeleted);
  EXPECT_EQ(batch.queries[1].status, ResponseStatus::kDeleted);
  EXPECT_EQ(batch.queries[2].status, ResponseStatus::kMiss);
  EXPECT_FALSE(runtime.GetValue(key5).ok());
  EXPECT_EQ(runtime.live_objects(), 98u);
}

TEST(KvRuntimeTest, MeasuredProbeAveragesAreSane) {
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK16(), 5000);
  WorkloadSpec spec = MakeWorkload(DatasetK16(), 95, KeyDistribution::kUniform);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);
  const BatchMeasurements m =
      RunFullBatch(runtime, PipelineConfig::MegaKv(), source, 2000);
  // Search always reads both candidate buckets; SET-replacements resolve
  // in the first matching bucket, so insert probes average in [1, 2+].
  EXPECT_NEAR(m.search_probes, 2.0, 0.01);
  EXPECT_GE(m.insert_probes, 1.0);
  // No explicit DELETEs and no evictions in this run.
  EXPECT_DOUBLE_EQ(m.delete_probes, 0.0);
}

TEST(KvRuntimeTest, EvictionPathUnderMemoryPressure) {
  KvRuntime::Options options = SmallRuntime();
  options.slab.arena_bytes = 1 << 20;  // tiny arena
  KvRuntime runtime(options);
  const uint64_t objects = runtime.Preload(DatasetK16(), 100000);
  ASSERT_LT(objects, 100000u);  // arena filled before the target
  // SETs of *new* keys now must evict.
  WorkloadSpec spec = MakeWorkload(DatasetK16(), 0, KeyDistribution::kUniform);
  WorkloadGenerator generator(spec, objects * 2, 3);  // half the keys are new
  TrafficSource source(&generator);
  const BatchMeasurements m =
      RunFullBatch(runtime, PipelineConfig::MegaKv(), source, 1000);
  EXPECT_GT(m.evictions, 0u);
  // Live object count cannot exceed what memory supports.
  EXPECT_LE(runtime.live_objects(), objects + 10);
}

TEST(KvRuntimeTest, AllocationGiveUpPathPropagatesError) {
  KvRuntime::Options options = SmallRuntime();
  options.slab.arena_bytes = 1 << 20;  // tiny arena
  KvRuntime runtime(options);
  const uint64_t objects = runtime.Preload(DatasetK16(), 100000);
  ASSERT_LT(objects, 100000u);  // arena filled before the target

  // A pinned reader blocks every epoch advance, so victims detached by the
  // allocation retry loop stay quarantined forever: the loop must exhaust
  // its bounded budget and give up rather than spin.
  EpochPin pin(runtime.epoch());

  QueryBatch batch;
  batch.config = PipelineConfig::MegaKv();
  const std::string key = "giveup-key-0001";
  const std::string value(64, 'x');
  QueryRecord record;
  record.op = QueryOp::kSet;
  record.key = key;
  record.value = value;
  record.hash = CuckooHashTable::HashKey(key);
  batch.queries.push_back(record);
  batch.measurements.num_queries = 1;
  batch.measurements.sets = 1;

  runtime.RunMemoryManagement(&batch, 0, 1);
  EXPECT_EQ(batch.queries[0].status, ResponseStatus::kError);
  EXPECT_EQ(batch.queries[0].object, nullptr);
  EXPECT_EQ(batch.measurements.failed_inserts, 1u);
  EXPECT_GT(batch.measurements.set_retries, 0u);
  EXPECT_GE(runtime.memory().counters().failed_allocations, 1u);

  // WR still answers the query — with an explicit error record.
  runtime.RunWriteResponse(&batch, 0, 1);
  EXPECT_EQ(batch.measurements.error_responses, 1u);
  ASSERT_EQ(batch.responses.size(), 1u);
  size_t offset = 0;
  ResponseView view;
  ASSERT_TRUE(DecodeResponse(batch.responses[0].payload.data(),
                             batch.responses[0].payload.size(), &offset, &view)
                  .ok());
  EXPECT_EQ(view.status, ResponseStatus::kError);
  runtime.RetireBatch(&batch);

  // Once the pin releases, reclamation resumes and allocation recovers.
  pin.Release();
  runtime.epoch().ReclaimAll();
  EXPECT_TRUE(runtime.Put(key, value).ok());
  EXPECT_EQ(*runtime.GetValue(key), value);
}

TEST(KvRuntimeTest, SamplingEpochFeedsFrequencies) {
  KvRuntime runtime(SmallRuntime());
  const uint64_t objects = runtime.Preload(DatasetK8(), 1000);
  runtime.set_sampling_epoch(7);
  WorkloadSpec spec = MakeWorkload(DatasetK8(), 100, KeyDistribution::kZipf);
  WorkloadGenerator generator(spec, objects, 3);
  TrafficSource source(&generator);
  const BatchMeasurements m =
      RunFullBatch(runtime, PipelineConfig::MegaKv(), source, 4000);
  ASSERT_FALSE(m.sampled_frequencies.empty());
  // Zipf traffic must produce some repeat counts within the epoch.
  uint32_t max_count = 0;
  for (uint32_t f : m.sampled_frequencies) max_count = std::max(max_count, f);
  EXPECT_GT(max_count, 1u);
}

}  // namespace
}  // namespace dido
