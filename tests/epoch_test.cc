// Unit tests for the epoch-based reclamation subsystem (src/sync/epoch.h).
//
// The invariants under test mirror the contract DIDO's pipeline relies on:
// a pointer retired at epoch e is freed only after two further advances,
// an active pin (slot or shared) caps the global epoch at pin-epoch + 1,
// and every deleter runs exactly once no matter how reclamation is driven.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sync/epoch.h"

namespace dido {
namespace {

// Counting deleter used throughout: increments the int behind `ctx`.
void CountDeleter(void* ctx, void* /*ptr*/) {
  *static_cast<int*>(ctx) += 1;
}

// Drives TryReclaim until `count` reaches `target` or attempts run out.
// Two rounds suffice when nothing is pinned; the bound catches livelock.
void ReclaimUntil(EpochManager& epoch, const int& count, int target) {
  for (int i = 0; i < 8 && count < target; ++i) epoch.TryReclaim();
}

TEST(EpochManagerTest, RetireThenDrainRunsDeleterExactlyOnce) {
  EpochManager epoch;
  int freed = 0;
  int object = 0;
  epoch.Retire(&object, &CountDeleter, &freed);
  EXPECT_EQ(freed, 0);  // nothing is ever freed inline
  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
  // Further reclamation must not touch the pointer again.
  EXPECT_EQ(epoch.ReclaimAll(), 0u);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, ReclaimAllDrainsBacklog) {
  EpochManager epoch;
  int freed = 0;
  std::vector<int> objects(100);
  for (int& object : objects) epoch.Retire(&object, &CountDeleter, &freed);
  EXPECT_EQ(epoch.ReclaimAll(), 0u);
  EXPECT_EQ(freed, 100);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamation) {
  EpochManager epoch;
  ASSERT_TRUE(epoch.RegisterCurrentThread());
  const uint64_t pin_epoch = epoch.global_epoch();
  EpochManager::PinToken token = epoch.Pin();

  int freed = 0;
  int object = 0;
  epoch.Retire(&object, &CountDeleter, &freed);

  // A pin taken at epoch e permits exactly one advance (to e + 1) and no
  // more, so the retiree — which needs the advance to e + 2 — stays
  // quarantined for as long as the pin is held.
  for (int i = 0; i < 4; ++i) epoch.TryReclaim();
  EXPECT_EQ(freed, 0);
  EXPECT_LE(epoch.global_epoch(), pin_epoch + 1);

  epoch.Unpin(token);
  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
  epoch.UnregisterCurrentThread();
}

TEST(EpochManagerTest, NestedPinsCollapseOntoOneSlot) {
  EpochManager epoch;
  ASSERT_TRUE(epoch.RegisterCurrentThread());
  EpochManager::PinToken outer = epoch.Pin();
  EpochManager::PinToken inner = epoch.Pin();
  EXPECT_FALSE(outer.shared);
  EXPECT_FALSE(inner.shared);

  int freed = 0;
  int object = 0;
  epoch.Retire(&object, &CountDeleter, &freed);

  // Releasing the inner pin must not release the outer one.
  epoch.Unpin(inner);
  for (int i = 0; i < 4; ++i) epoch.TryReclaim();
  EXPECT_EQ(freed, 0);

  epoch.Unpin(outer);
  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
  epoch.UnregisterCurrentThread();
}

TEST(EpochManagerTest, UnregisteredThreadFallsBackToSharedPin) {
  EpochManager epoch;
  ASSERT_FALSE(epoch.CurrentThreadRegistered());
  EpochManager::PinToken token = epoch.Pin();
  EXPECT_TRUE(token.shared);  // no slot -> per-generation refcount

  int freed = 0;
  int object = 0;
  epoch.Retire(&object, &CountDeleter, &freed);
  for (int i = 0; i < 4; ++i) epoch.TryReclaim();
  EXPECT_EQ(freed, 0);  // the shared pin blocks just like a slot pin

  epoch.Unpin(token);
  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, SlotExhaustionFallsBackToSharedPin) {
  EpochManager::Options options;
  options.max_threads = 1;
  EpochManager epoch(options);
  ASSERT_TRUE(epoch.RegisterCurrentThread());

  std::thread overflow([&epoch] {
    EXPECT_FALSE(epoch.RegisterCurrentThread());  // all slots taken
    EXPECT_FALSE(epoch.CurrentThreadRegistered());
    EpochManager::PinToken token = epoch.Pin();
    EXPECT_TRUE(token.shared);
    epoch.Unpin(token);
  });
  overflow.join();
  epoch.UnregisterCurrentThread();
}

TEST(EpochManagerTest, EpochPinTransfersAcrossThreads) {
  EpochManager epoch;
  int freed = 0;
  int object = 0;

  // Acquired here (the IN.S stage), released on another thread (the stage
  // that retires the batch) — exactly what QueryBatch::epoch_pin does.
  EpochPin pin(epoch);
  ASSERT_TRUE(pin.held());
  epoch.Retire(&object, &CountDeleter, &freed);
  for (int i = 0; i < 4; ++i) epoch.TryReclaim();
  EXPECT_EQ(freed, 0);

  std::thread releaser([moved = std::move(pin)]() mutable { moved.Release(); });
  releaser.join();

  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, EpochGuardReleasesOnScopeExit) {
  EpochManager epoch;
  int freed = 0;
  int object = 0;
  {
    EpochGuard guard(epoch);
    epoch.Retire(&object, &CountDeleter, &freed);
    for (int i = 0; i < 4; ++i) epoch.TryReclaim();
    EXPECT_EQ(freed, 0);
  }
  ReclaimUntil(epoch, freed, 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, ScopedParticipantRespectsPriorRegistration) {
  EpochManager epoch;
  {
    ScopedEpochParticipant outer(epoch);
    EXPECT_TRUE(epoch.CurrentThreadRegistered());
    {
      ScopedEpochParticipant inner(epoch);
      EXPECT_TRUE(epoch.CurrentThreadRegistered());
    }
    // The inner scope must not have stolen the outer scope's slot.
    EXPECT_TRUE(epoch.CurrentThreadRegistered());
  }
  EXPECT_FALSE(epoch.CurrentThreadRegistered());
}

TEST(EpochManagerTest, RegistrationIsPerManager) {
  EpochManager first;
  EpochManager second;
  ASSERT_TRUE(first.RegisterCurrentThread());
  EXPECT_TRUE(first.CurrentThreadRegistered());
  EXPECT_FALSE(second.CurrentThreadRegistered());
  ASSERT_TRUE(second.RegisterCurrentThread());
  EXPECT_TRUE(second.CurrentThreadRegistered());
  second.UnregisterCurrentThread();
  EXPECT_TRUE(first.CurrentThreadRegistered());  // untouched
  first.UnregisterCurrentThread();
}

TEST(EpochManagerTest, DestructorDrainsQuarantine) {
  int freed = 0;
  int object = 0;
  {
    EpochManager epoch;
    epoch.Retire(&object, &CountDeleter, &freed);
    EXPECT_EQ(freed, 0);
  }
  EXPECT_EQ(freed, 1);  // ~EpochManager ran the deleter
}

TEST(EpochManagerTest, StatsTrackRetirementLifecycle) {
  EpochManager epoch;
  int freed = 0;
  std::vector<int> objects(10);
  for (int& object : objects) epoch.Retire(&object, &CountDeleter, &freed);

  EpochManager::Stats before = epoch.stats();
  EXPECT_EQ(before.retired, 10u);
  EXPECT_EQ(before.reclaimed, 0u);
  EXPECT_EQ(before.quarantined, 10u);

  EXPECT_EQ(epoch.ReclaimAll(), 0u);
  EpochManager::Stats after = epoch.stats();
  EXPECT_EQ(after.retired, 10u);
  EXPECT_EQ(after.reclaimed, 10u);
  EXPECT_EQ(after.quarantined, 0u);
  EXPECT_GT(after.advances, before.advances);
  EXPECT_GT(after.global_epoch, before.global_epoch);
}

// Concurrency smoke: readers pin/unpin while a writer retires and reclaims.
// Each retired object is poisoned by its deleter; readers assert they never
// observe a poisoned object while pinned.  (The stress-grade version lives
// in concurrency_stress_test.cc; this one keeps the unit suite fast.)
TEST(EpochManagerTest, ConcurrentPinRetireSmoke) {
  struct Node {
    std::atomic<int> poisoned{0};
  };
  struct Shared {
    EpochManager epoch;
    std::atomic<Node*> current{nullptr};
    std::atomic<bool> stop{false};
  };
  Shared shared;
  shared.current.store(new Node());

  static constexpr auto kPoisonAndDelete = +[](void* /*ctx*/, void* ptr) {
    Node* node = static_cast<Node*>(ptr);
    node->poisoned.store(1);
    delete node;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&shared] {
      ScopedEpochParticipant participant(shared.epoch);
      while (!shared.stop.load()) {
        EpochGuard guard(shared.epoch);
        Node* node = shared.current.load();
        // Pinned before the load: the node cannot have been reclaimed.
        ASSERT_EQ(node->poisoned.load(), 0);
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    Node* fresh = new Node();
    Node* stale = shared.current.exchange(fresh);
    shared.epoch.Retire(stale, kPoisonAndDelete, nullptr);
  }
  shared.stop.store(true);
  for (std::thread& reader : readers) reader.join();

  delete shared.current.load();
  EXPECT_EQ(shared.epoch.ReclaimAll(), 0u);
}

}  // namespace
}  // namespace dido
