// Tests for the wall-clock (real-thread) pipeline execution mode.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "live/live_pipeline.h"

namespace dido {
namespace {

struct LiveFixture {
  std::unique_ptr<KvRuntime> runtime;
  std::unique_ptr<WorkloadGenerator> generator;
  std::unique_ptr<TrafficSource> source;
  uint64_t objects = 0;

  explicit LiveFixture(const WorkloadSpec& spec) {
    KvRuntime::Options rt;
    rt.slab.arena_bytes = 16 << 20;
    rt.index.num_buckets = 1 << 14;
    runtime = std::make_unique<KvRuntime>(rt);
    objects = runtime->Preload(spec.dataset, 20000);
    generator = std::make_unique<WorkloadGenerator>(spec, objects, 3);
    source = std::make_unique<TrafficSource>(generator.get());
  }
};

void RunFor(LivePipeline& pipeline, TrafficSource* source, int millis) {
  ASSERT_TRUE(pipeline.Start(source).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  pipeline.Stop();
}

TEST(LivePipelineTest, ServesReadTrafficWithoutMisses) {
  LiveFixture f(MakeWorkload(DatasetK16(), 100, KeyDistribution::kZipf));
  LivePipeline::Options options;
  LivePipeline pipeline(f.runtime.get(), PipelineConfig::MegaKv(), options);
  RunFor(pipeline, f.source.get(), 200);
  const LivePipeline::Stats stats = pipeline.Collect();
  EXPECT_GT(stats.batches, 2u);
  EXPECT_GT(stats.queries, 4000u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, stats.queries);
  EXPECT_GT(stats.mops, 0.0);
}

TEST(LivePipelineTest, MixedTrafficKeepsStoreIntact) {
  LiveFixture f(MakeWorkload(DatasetK16(), 50, KeyDistribution::kZipf));
  LivePipeline::Options options;
  PipelineConfig config;  // DIDO-style: [IN.S,KC,RD] on the GPU worker
  config.gpu_begin = 3;
  config.gpu_end = 6;
  config.insert_device = Device::kCpu;
  config.delete_device = Device::kCpu;
  LivePipeline pipeline(f.runtime.get(), config, options);
  RunFor(pipeline, f.source.get(), 300);
  const LivePipeline::Stats stats = pipeline.Collect();
  EXPECT_GT(stats.sets, 1000u);
  // In-place index replacement: concurrent batches may only miss through
  // reclamation races, which the epoch pins each batch carries prevent.
  EXPECT_EQ(stats.misses, 0u);
  // Memory must be steady after tens of thousands of overwrites.
  EXPECT_EQ(f.runtime->live_objects(), f.objects);
  const MemoryManager::Counters& counters = f.runtime->memory().counters();
  EXPECT_EQ(counters.allocations - counters.frees, f.objects);
}

TEST(LivePipelineTest, ResponsesAreWellFormed) {
  LiveFixture f(MakeWorkload(DatasetK8(), 95, KeyDistribution::kUniform));
  LivePipeline::Options options;
  options.batch_queries = 512;
  options.keep_responses = true;
  LivePipeline pipeline(f.runtime.get(), PipelineConfig::MegaKv(), options);
  RunFor(pipeline, f.source.get(), 100);
  const LivePipeline::Stats stats = pipeline.Collect();
  std::vector<Frame> responses = pipeline.TakeResponses();
  ASSERT_FALSE(responses.empty());
  uint64_t decoded = 0;
  for (const Frame& frame : responses) {
    size_t offset = 0;
    while (offset < frame.payload.size()) {
      ResponseView view;
      ASSERT_TRUE(DecodeResponse(frame.payload.data(), frame.payload.size(),
                                 &offset, &view)
                      .ok());
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, stats.queries);
}

TEST(LivePipelineTest, PureCpuSingleStageWorks) {
  LiveFixture f(MakeWorkload(DatasetK16(), 95, KeyDistribution::kZipf));
  PipelineConfig config;
  config.gpu_begin = 4;
  config.gpu_end = 4;
  config.insert_device = Device::kCpu;
  config.delete_device = Device::kCpu;
  LivePipeline::Options options;
  LivePipeline pipeline(f.runtime.get(), config, options);
  RunFor(pipeline, f.source.get(), 100);
  EXPECT_GT(pipeline.Collect().queries, 1000u);
  EXPECT_EQ(pipeline.Collect().misses, 0u);
}

TEST(LivePipelineTest, DoubleStartFailsAndRestartWorks) {
  LiveFixture f(MakeWorkload(DatasetK16(), 100, KeyDistribution::kUniform));
  LivePipeline pipeline(f.runtime.get(), PipelineConfig::MegaKv(),
                        LivePipeline::Options());
  ASSERT_TRUE(pipeline.Start(f.source.get()).ok());
  EXPECT_EQ(pipeline.Start(f.source.get()).code(),
            StatusCode::kAlreadyExists);
  pipeline.Stop();
  EXPECT_FALSE(pipeline.running());
  ASSERT_TRUE(pipeline.Start(f.source.get()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pipeline.Stop();
  EXPECT_GT(pipeline.Collect().batches, 0u);
}

TEST(LivePipelineTest, StopIsIdempotent) {
  LiveFixture f(MakeWorkload(DatasetK16(), 100, KeyDistribution::kUniform));
  LivePipeline pipeline(f.runtime.get(), PipelineConfig::MegaKv(),
                        LivePipeline::Options());
  pipeline.Stop();  // never started: no-op
  ASSERT_TRUE(pipeline.Start(f.source.get()).ok());
  pipeline.Stop();
  pipeline.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace dido
