# Wires compiler sanitizers into every target of the build tree.
#
# Usage:  set DIDO_SANITIZE to a comma-separated subset of
#   address | undefined | thread | leak
# e.g. -DDIDO_SANITIZE=address,undefined or -DDIDO_SANITIZE=thread.
# ThreadSanitizer cannot be combined with AddressSanitizer or
# LeakSanitizer (they instrument the same shadow memory).
#
# The flags are applied directory-wide (compile + link) so static
# libraries, tests, benchmarks and examples all agree on the
# instrumentation ABI.

if(NOT DIDO_SANITIZE)
  return()
endif()

string(REPLACE "," ";" _dido_sanitizers "${DIDO_SANITIZE}")
set(_dido_sanitize_flags "")
set(_dido_has_thread FALSE)
set(_dido_has_address FALSE)

foreach(_san IN LISTS _dido_sanitizers)
  string(STRIP "${_san}" _san)
  if(_san STREQUAL "address")
    set(_dido_has_address TRUE)
    list(APPEND _dido_sanitize_flags -fsanitize=address)
  elseif(_san STREQUAL "leak")
    set(_dido_has_address TRUE)  # same constraint vs. thread
    list(APPEND _dido_sanitize_flags -fsanitize=leak)
  elseif(_san STREQUAL "undefined")
    # Abort on the first UB report instead of recovering, so CTest fails.
    list(APPEND _dido_sanitize_flags -fsanitize=undefined
         -fno-sanitize-recover=all)
  elseif(_san STREQUAL "thread")
    set(_dido_has_thread TRUE)
    list(APPEND _dido_sanitize_flags -fsanitize=thread)
  else()
    message(FATAL_ERROR
      "DIDO_SANITIZE: unknown sanitizer '${_san}' "
      "(expected address, undefined, thread, or leak)")
  endif()
endforeach()

if(_dido_has_thread AND _dido_has_address)
  message(FATAL_ERROR
    "DIDO_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
endif()

# Accurate stack traces in reports.
list(APPEND _dido_sanitize_flags -fno-omit-frame-pointer -g)

message(STATUS "dido: sanitizers enabled: ${DIDO_SANITIZE}")
add_compile_options(${_dido_sanitize_flags})
add_link_options(${_dido_sanitize_flags})
