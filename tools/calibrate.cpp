// Internal calibration probe: prints Fig-4/5/6-style numbers for the
// Mega-KV baseline plus DIDO-vs-MegaKV speedups across key workloads.
#include <cstdio>
#include "common/logging.h"
#include "core/system_runner.h"
using namespace dido;

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentOptions exp;
  exp.interval_us = 300.0;  // Fig 4 setting
  std::printf("=== Fig4-style: Mega-KV stage times (interval 300us, G95-S) ===\n");
  for (const DatasetSpec& d : StandardDatasets()) {
    WorkloadSpec w = MakeWorkload(d, 95, KeyDistribution::kZipf);
    SystemMeasurement m = MeasureMegaKvCoupled(w, exp);
    std::printf("%-6s N=%6lu mops=%6.2f gpu_util=%4.0f%% stages:", d.name.c_str(),
                (unsigned long)m.batch_size, m.throughput_mops, 100*m.gpu_utilization);
    for (auto& st : m.representative.stages) {
      std::printf("  [%s]%.0fus", st.device==Device::kCpu?"cpu":"gpu", st.time_us);
    }
    std::printf("\n    tasks:");
    for (auto& st : m.representative.stages)
      for (auto& tt : st.task_times)
        std::printf(" %s=%.1f", std::string(TaskKindName(tt.task)).c_str(), tt.time_us);
    std::printf("\n");
  }
  std::printf("\n=== DIDO vs MegaKV speedups (latency 1000us) ===\n");
  ExperimentOptions e2;
  for (const DatasetSpec& d : StandardDatasets()) {
    for (int pct : {100, 95, 50}) {
      for (auto dist : {KeyDistribution::kUniform, KeyDistribution::kZipf}) {
        WorkloadSpec w = MakeWorkload(d, pct, dist);
        SystemMeasurement mk = MeasureMegaKvCoupled(w, e2);
        SystemMeasurement di = MeasureDido(w, e2);
        std::printf("%-12s megakv=%6.2f dido=%6.2f speedup=%4.2f  cfg=%s\n",
                    w.Name().c_str(), mk.throughput_mops, di.throughput_mops,
                    di.throughput_mops/mk.throughput_mops,
                    di.config.ToString().c_str());
      }
    }
  }
  return 0;
}
