#!/usr/bin/env bash
# Lint driver for the dido repository.
#
#   tools/lint.sh [--fix]
#
# Runs, in order:
#   1. the dido invariant analyzer (all seven contract passes, including
#      the memory-order lint that used to be tools/check_memory_order.py),
#   2. clang-format in check mode (or in-place with --fix),
#   3. clang-tidy over src/ (needs a compile_commands.json; the script
#      configures build/ with CMAKE_EXPORT_COMPILE_COMMANDS if absent).
#
# clang-format / clang-tidy steps are skipped with a notice when the tool
# is not installed, so the script stays usable in minimal containers; CI
# runs it on an image that has both.

set -u

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
FIX=0
[[ "${1:-}" == "--fix" ]] && FIX=1
STATUS=0

note() { printf '== %s\n' "$*"; }

# ---------------------------------------------------------------- sources --
# Git pathspec '*' crosses directory boundaries, so 'src/*.cc' covers every
# subsystem including nested ones (src/faults/, ...).
mapfile -t SOURCES < <(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' \
  'tools/*.cpp' 2>/dev/null)
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  # Not a git checkout (e.g. a tarball): fall back to find.
  mapfile -t SOURCES < <(find src tests -name '*.cc' -o -name '*.h')
fi

# ------------------------------------------------- dido invariant analyzer --
# Full static-analysis sweep (thread-safety build + cppcheck included) is
# tools/analyze.sh; lint runs the fast pure-Python contract passes (all
# seven, memorder included) with the text backend — deterministic and
# toolchain-free.
note "dido_analyze: all contract passes (text backend)"
if command -v python3 >/dev/null 2>&1; then
  python3 -m tools.dido_analyze "$REPO_ROOT" || STATUS=1
else
  note "SKIP: python3 not found"
fi

# ------------------------------------------------------------ clang-format --
if command -v clang-format >/dev/null 2>&1; then
  if [[ $FIX -eq 1 ]]; then
    note "clang-format: rewriting in place"
    clang-format -i "${SOURCES[@]}" || STATUS=1
  else
    note "clang-format: check mode"
    clang-format --dry-run -Werror "${SOURCES[@]}" || STATUS=1
  fi
else
  note "SKIP: clang-format not found"
fi

# -------------------------------------------------------------- clang-tidy --
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy over src/"
  if [[ ! -f build/compile_commands.json ]]; then
    note "configuring build/ for compile_commands.json"
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || STATUS=1
  fi
  mapfile -t TIDY_SOURCES < <(printf '%s\n' "${SOURCES[@]}" | grep '^src/.*\.cc$')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet "${TIDY_SOURCES[@]}" || STATUS=1
  else
    clang-tidy -p build --quiet "${TIDY_SOURCES[@]}" || STATUS=1
  fi
else
  note "SKIP: clang-tidy not found"
fi

if [[ $STATUS -eq 0 ]]; then
  note "lint clean"
else
  note "lint FAILED"
fi
exit $STATUS
