"""Epoch-pin pass: retire-able-memory APIs must be called under a pin.

Functions whose declarations carry the DIDO_REQUIRES_EPOCH marker (see
src/common/thread_annotations.h) return or touch pointers that a concurrent
eviction can retire.  Calling one without an active EpochGuard / EpochPin /
ScopedEpochParticipant is a use-after-reclaim waiting for memory pressure.

Textual model:

  * Annotated-function discovery: any `Name(...) [const] DIDO_REQUIRES_EPOCH`
    declaration anywhere under the scanned root contributes `Name` to the
    protected set.
  * Pin scopes: a line containing `EpochGuard g(...)`, `EpochPin(...)` (also
    as the RHS of an assignment, the batch-pin hand-off idiom), or
    `ScopedEpochParticipant p(...)` establishes a pin at the current brace
    depth; the pin covers subsequent lines until that depth closes.
  * Call sites: `expr->Name(` / `expr.Name(` for a protected Name.  Plain
    `Name(` calls are deliberately ignored — inside the implementation of a
    protected method the epoch contract is inherited from the caller, and
    that is exactly where unqualified member calls occur.

Known blind spots (accepted for a zero-dependency pass): pins stashed in
containers, calls split across lines after the `->`, and helper functions
that take a pinned pointer as a parameter.  The suppression comment exists
for the rare case that hits one.
"""

import re

from . import source

REQUIRES_EPOCH_DECL_RE = re.compile(
    r"\b(\w+)\s*\((?:[^()]|\([^()]*\))*\)\s*(?:const\s*)?DIDO_REQUIRES_EPOCH\b",
    re.DOTALL,
)

PIN_RE = re.compile(
    r"\b(?:EpochGuard|EpochPin|ScopedEpochParticipant)\b(?:\s+\w+)?\s*\("
)

BRACE_RE = re.compile(r"[{}]")


def collect_protected_names(files):
    """Set of function names declared with DIDO_REQUIRES_EPOCH."""
    names = set()
    for sf in files:
        for m in REQUIRES_EPOCH_DECL_RE.finditer(sf.text()):
            names.add(m.group(1))
    return names


def run(files, protected_names=None):
    files = list(files)
    if protected_names is None:
        protected_names = collect_protected_names(files)
    if not protected_names:
        return []
    call_re = re.compile(
        r"(?:->|\.)\s*(" + "|".join(sorted(protected_names)) + r")\s*\("
    )
    findings = []
    for sf in files:
        depth = 0
        pin_depths = []  # brace depth at which each active pin was created
        for line_no, raw in enumerate(sf.lines, start=1):
            line = source.strip_comments_and_strings(raw)
            # Pins declared on this line take effect for the calls after
            # them; a call and a pin on one line are treated as pinned
            # (the guard idiom puts the guard first).
            if PIN_RE.search(line):
                pin_depths.append(depth)
            for m in call_re.finditer(line):
                if pin_depths:
                    continue
                if sf.allowed("epoch", line_no):
                    continue
                findings.append(
                    source.Finding(
                        sf.rel,
                        line_no,
                        "epoch",
                        f"call to epoch-protected '{m.group(1)}' with no "
                        "EpochGuard/EpochPin in scope — the result is "
                        "retire-able memory (see DIDO_REQUIRES_EPOCH in "
                        "common/thread_annotations.h)",
                    )
                )
            for b in BRACE_RE.finditer(line):
                if b.group() == "{":
                    depth += 1
                else:
                    depth = max(0, depth - 1)
                    while pin_depths and pin_depths[-1] > depth:
                        pin_depths.pop()
        # File-scope sanity: any pins left open die with the file.
    return findings
