"""CLI: python3 tools/dido_analyze <repo-root> [--pass ...] [--backend ...]

Exit status: 0 clean, 1 findings, 2 usage error (the convention the old
standalone tools/check_memory_order.py established).
"""

import argparse
import sys
from pathlib import Path

from . import (callgraph, clang_backend, epoch_pass, fault_pass, hot_pass,
               lock_pass, memorder_pass, ownership_pass, response_pass,
               source)

ALL_PASSES = ("epoch", "fault", "lock", "hot", "own", "resp", "memorder")

# Passes that share the call-graph model (built once per run).
CALLGRAPH_PASSES = ("hot", "own", "resp")


def parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="dido_analyze",
        description="DIDO concurrency-contract static analysis "
        "(epoch-pin, fault-point, lock-annotation, hot-path purity, "
        "allocation-ownership, response-completeness, and memory-order "
        "passes).",
    )
    parser.add_argument("root", help="repo root (or a fixture directory)")
    parser.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=list(ALL_PASSES) + ["all"],
        help="pass to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--backend",
        choices=["text", "clang", "libclang", "clang-json", "auto"],
        default="text",
        help="AST backend for the lock pass and the call-graph passes. "
        "'auto' picks libclang, then `clang -Xclang -ast-dump=json`, then "
        "text, depending on what is installed and whether a "
        "compile_commands.json is found; 'clang' is the pre-ISSUE-7 "
        "spelling of 'auto'.  Explicit AST choices degrade to text with "
        "a notice when their prerequisites are missing — the exit status "
        "never depends on clang being healthy.",
    )
    parser.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the AST backends (default: "
        "$DIDO_COMPILE_COMMANDS, then build*/compile_commands.json "
        "under the root)",
    )
    parser.add_argument(
        "--catalog",
        default=None,
        help="fault-point catalog header "
        "(default: <root>/src/faults/fault_points.h)",
    )
    parser.add_argument(
        "--chaos-test",
        default=None,
        help="chaos test that must reference every fault point "
        "(default: <root>/tests/chaos_test.cc)",
    )
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"dido_analyze: '{root}' is not a directory", file=sys.stderr)
        return 2
    passes = set(args.passes or ["all"])
    if "all" in passes:
        passes = set(ALL_PASSES)

    files = list(source.discover(root))
    if not files:
        print(f"dido_analyze: no .h/.cc files under '{root}'", file=sys.stderr)
        return 2

    backend, ccdb = clang_backend.resolve_backend(
        args.backend, root, args.compile_commands)

    findings = []
    if "epoch" in passes:
        findings += epoch_pass.run(files)
    if "fault" in passes:
        catalog_path = Path(args.catalog) if args.catalog else root / "src/faults/fault_points.h"
        chaos_path = Path(args.chaos_test) if args.chaos_test else root / "tests/chaos_test.cc"
        catalog = None
        if catalog_path.is_file():
            try:
                rel = catalog_path.relative_to(root)
            except ValueError:
                rel = catalog_path
            catalog = source.SourceFile(catalog_path, rel)
            # The catalog itself holds no macro sites; exclude it from the
            # site scan so its literals are not double-counted.
            files_for_sites = [f for f in files if f.path != catalog_path]
        else:
            files_for_sites = files
        chaos_text = chaos_path.read_text(encoding="utf-8") if chaos_path.is_file() else None
        findings += fault_pass.run(
            files_for_sites, catalog, chaos_text, str(chaos_path)
        )
    if "lock" in passes:
        if backend in ("libclang",) and clang_backend.available():
            findings += clang_backend.run_lock_pass(files)
        else:
            findings += lock_pass.run(files)

    model = None
    model_backend = "text"
    if passes & set(CALLGRAPH_PASSES):
        model, model_backend = callgraph.build_model(files, backend, ccdb)
    if "hot" in passes:
        findings += hot_pass.run(files, model)
    if "own" in passes:
        findings += ownership_pass.run(files, model)
    if "resp" in passes:
        findings += response_pass.run(files, model)
    if "memorder" in passes:
        findings += memorder_pass.run(files)

    findings.sort(key=lambda f: (f.rel, f.line))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\ndido_analyze: {len(findings)} finding(s).  Each one is a "
            "broken concurrency contract (or a missing annotation/allow "
            "comment) — see tools/dido_analyze/__init__.py for the rules."
        )
        return 1
    ran = ", ".join(sorted(passes))
    suffix = ""
    if passes & set(CALLGRAPH_PASSES):
        suffix = f", call-graph backend: {model_backend}"
    print(f"dido_analyze: clean ({ran} pass(es), {len(files)} files"
          f"{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
