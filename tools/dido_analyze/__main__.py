"""CLI: python3 tools/dido_analyze <repo-root> [--pass ...] [--backend ...]

Exit status mirrors tools/check_memory_order.py: 0 clean, 1 findings,
2 usage error.
"""

import argparse
import sys
from pathlib import Path

from . import clang_backend, epoch_pass, fault_pass, lock_pass, source


def parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="dido_analyze",
        description="DIDO concurrency-contract static analysis "
        "(epoch-pin, fault-point, lock-annotation passes).",
    )
    parser.add_argument("root", help="repo root (or a fixture directory)")
    parser.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=["epoch", "fault", "lock", "all"],
        help="pass to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--backend",
        choices=["text", "clang"],
        default="text",
        help="lock-pass backend; 'clang' needs the libclang Python "
        "bindings and falls back to 'text' with a notice when absent",
    )
    parser.add_argument(
        "--catalog",
        default=None,
        help="fault-point catalog header "
        "(default: <root>/src/faults/fault_points.h)",
    )
    parser.add_argument(
        "--chaos-test",
        default=None,
        help="chaos test that must reference every fault point "
        "(default: <root>/tests/chaos_test.cc)",
    )
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"dido_analyze: '{root}' is not a directory", file=sys.stderr)
        return 2
    passes = set(args.passes or ["all"])
    if "all" in passes:
        passes = {"epoch", "fault", "lock"}

    files = list(source.discover(root))
    if not files:
        print(f"dido_analyze: no .h/.cc files under '{root}'", file=sys.stderr)
        return 2

    findings = []
    if "epoch" in passes:
        findings += epoch_pass.run(files)
    if "fault" in passes:
        catalog_path = Path(args.catalog) if args.catalog else root / "src/faults/fault_points.h"
        chaos_path = Path(args.chaos_test) if args.chaos_test else root / "tests/chaos_test.cc"
        catalog = None
        if catalog_path.is_file():
            try:
                rel = catalog_path.relative_to(root)
            except ValueError:
                rel = catalog_path
            catalog = source.SourceFile(catalog_path, rel)
            # The catalog itself holds no macro sites; exclude it from the
            # site scan so its literals are not double-counted.
            files_for_sites = [f for f in files if f.path != catalog_path]
        else:
            files_for_sites = files
        chaos_text = chaos_path.read_text(encoding="utf-8") if chaos_path.is_file() else None
        findings += fault_pass.run(
            files_for_sites, catalog, chaos_text, str(chaos_path)
        )
    if "lock" in passes:
        if args.backend == "clang" and clang_backend.available():
            findings += clang_backend.run_lock_pass(files)
        else:
            if args.backend == "clang":
                print(
                    "dido_analyze: clang Python bindings not installed; "
                    "using the textual lock-pass backend",
                    file=sys.stderr,
                )
            findings += lock_pass.run(files)

    findings.sort(key=lambda f: (f.rel, f.line))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\ndido_analyze: {len(findings)} finding(s).  Each one is a "
            "broken concurrency contract (or a missing annotation/allow "
            "comment) — see tools/dido_analyze/__init__.py for the rules."
        )
        return 1
    ran = ", ".join(sorted(passes))
    print(f"dido_analyze: clean ({ran} pass(es), {len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
