"""Shared source model: file discovery, findings, and suppression comments."""

import re
from pathlib import Path

PASS_NAMES = ("epoch", "fault", "lock", "hot", "own", "resp", "memorder")

ALLOW_RE = re.compile(r"//\s*dido-analyze:\s*allow\((\w+)\)\s*:")
BEGIN_ALLOW_RE = re.compile(r"//\s*dido-analyze:\s*begin-allow\((\w+)\)\s*:")
END_ALLOW_RE = re.compile(r"//\s*dido-analyze:\s*end-allow\((\w+)\)")


class Finding:
    """One analyzer complaint, printable as path:line: [pass] message."""

    def __init__(self, rel, line, pass_name, message):
        self.rel = rel
        self.line = line  # 1-based
        self.pass_name = pass_name
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.pass_name}] {self.message}"


class SourceFile:
    """A loaded source file plus its parsed suppression comments."""

    def __init__(self, path, rel):
        self.path = Path(path)
        self.rel = str(rel)
        self.lines = self.path.read_text(encoding="utf-8").splitlines()
        # pass name -> set of 1-based line numbers where findings are allowed
        self._allowed = {name: set() for name in PASS_NAMES}
        self._parse_suppressions()

    def _parse_suppressions(self):
        open_regions = {}  # pass name -> region start line
        for i, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if m and m.group(1) in self._allowed:
                # Covers the annotated line, the rest of its comment block
                # (a reason often wraps over several // lines), and the
                # first code line after it — so the comment may sit on its
                # own line(s) above the code it justifies.
                end = i + 1
                while end <= len(self.lines) and \
                        self.lines[end - 1].lstrip().startswith("//"):
                    end += 1
                self._allowed[m.group(1)].update(range(i, end + 1))
            m = BEGIN_ALLOW_RE.search(line)
            if m and m.group(1) in self._allowed:
                open_regions[m.group(1)] = i
            m = END_ALLOW_RE.search(line)
            if m and m.group(1) in open_regions:
                start = open_regions.pop(m.group(1))
                self._allowed[m.group(1)].update(range(start, i + 1))
        # An unclosed begin-allow suppresses nothing past its own line —
        # better to surface the forgotten end-allow as findings than to
        # silently exempt the rest of the file.

    def allowed(self, pass_name, line):
        return line in self._allowed.get(pass_name, ())

    def text(self):
        return "\n".join(self.lines)


def strip_comments_and_strings(line):
    """Blanks out // comments and "..." string contents (keeps the quotes).

    Good enough for brace counting and identifier matching; /* */ block
    comments are not used in this codebase (clang-format style).
    """
    out = []
    i, n = 0, len(line)
    in_string = False
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                in_string = False
                out.append(c)
            else:
                out.append(" ")
            i += 1
            continue
        if c == '"':
            in_string = True
            out.append(c)
            i += 1
            continue
        if c == "'" and i + 2 < n and "'" in line[i + 1 : i + 4]:
            end = line.find("'", i + 1)
            out.append(" " * (end - i + 1))
            i = end + 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def discover(root, subdirs=("src",), suffixes=(".h", ".cc")):
    """Yields SourceFile for every matching file under root/<subdir>.

    When none of the requested subdirs exist (e.g. an analyzer fixture
    directory), scans `root` itself recursively instead.
    """
    root = Path(root)
    bases = [root / s for s in subdirs if (root / s).is_dir()]
    if not bases:
        bases = [root]
    seen = set()
    for base in bases:
        for path in sorted(base.rglob("*")):
            if path.suffix not in suffixes or not path.is_file():
                continue
            if path in seen:
                continue
            seen.add(path)
            yield SourceFile(path, path.relative_to(root))
