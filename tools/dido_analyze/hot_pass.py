"""Hot-path purity pass: DIDO_HOT kernels must stay lock/alloc/block-free.

Roots are every function whose declaration or definition carries DIDO_HOT.
The pass walks the transitive call graph from the roots (resolution by
unqualified name against in-tree definitions — conservative: a shared name
pulls in every definition) and scans each reachable function's body lines
for impurity primitives:

  lock     MutexLock / UniqueMutexLock / std::*_lock / .Lock() / .lock()
  alloc    new, make_unique/shared, malloc family, container growth
           (.push_back/.emplace*/.insert/.resize/.reserve/...),
           std::to_string, std::string temporaries
  block    sleep_for/sleep_until, .join(), condition-variable waits
  syscall  DIDO_LOG (non-Fatal), printf family, iostreams

DIDO_LOG(Fatal) and DIDO_CHECK are exempt: they terminate the process, so
they are never part of a *successful* hot path.  Each finding is reported
at the offending line in the file that owns it, with the call path from the
root in the message; suppress with `dido-analyze: allow(hot): <reason>` on
or above the offending line.

An allow(hot) comment at a *call site* additionally prunes the walk into
that callee (the reason justifies the hand-off, not just the line), and a
callee annotated DIDO_COLD — an explicit resource-management boundary like
the MM stage — is never entered.  See callgraph.reachable.
"""

from . import callgraph, source


def run(files, model=None):
    if model is None:
        model = callgraph.build_text_model(files)
    roots = model.annotated("DIDO_HOT")
    findings = []
    seen = set()  # (path, line, category) — shared names dedupe here
    for fn, path in sorted(
            callgraph.reachable(model, roots, prune_pass="hot").items(),
            key=lambda item: item[1]):
        in_root = len(path) == 1
        for line_no, text in fn.body:
            for category, regex, label in callgraph.PRIMITIVES:
                if not regex.search(text):
                    continue
                key = (fn.sf.rel, line_no, category)
                if key in seen:
                    continue
                seen.add(key)
                if fn.sf.allowed("hot", line_no):
                    continue
                via = ("" if in_root
                       else f" (reached via {' -> '.join(path)})")
                findings.append(source.Finding(
                    fn.sf.rel, line_no, "hot",
                    f"{label} on the hot path of DIDO_HOT root "
                    f"'{path[0]}'{via}"))
    return findings
