"""Fault-point pass: every fault point is unique, cataloged, and rehearsed.

Checks three properties over the DIDO_FAULT_POINT / DIDO_FAULT_POINT_HIT
sites in the scanned tree:

  1. Uniqueness — a fault-point name appears at exactly one site (two sites
     sharing a name can no longer be armed independently) and exactly once
     in the catalog.
  2. Catalog — every site name is declared in src/faults/fault_points.h and
     every catalog entry still has a live site (no typo'd orphans in either
     direction; a misspelled site is armed-but-never-fires, the worst kind
     of chaos test).
  3. Rehearsal — every catalog name is referenced at least once by
     tests/chaos_test.cc, so each failure mode has a test arming it.
"""

import re

from . import source

SITE_RE = re.compile(r"\bDIDO_FAULT_POINT(?:_HIT)?\s*\(\s*\"([^\"]+)\"")
# Catalog entries are the string literals bound to constexpr string_views.
CATALOG_ENTRY_RE = re.compile(r"=\s*\"([a-z0-9_.]+)\"|^\s*\"([a-z0-9_.]+)\"")


def collect_sites(files):
    """[(SourceFile, line_no, name)] for every macro site (not the macro
    definition itself, which takes an unquoted parameter)."""
    sites = []
    for sf in files:
        for line_no, raw in enumerate(sf.lines, start=1):
            if raw.lstrip().startswith("#"):
                continue  # the #define in fault_registry.h
            for m in SITE_RE.finditer(raw):
                sites.append((sf, line_no, m.group(1)))
    return sites


def collect_catalog(catalog_file):
    """[(line_no, name)] from the fault_points.h catalog."""
    entries = []
    for line_no, raw in enumerate(catalog_file.lines, start=1):
        m = CATALOG_ENTRY_RE.search(raw)
        if m:
            entries.append((line_no, m.group(1) or m.group(2)))
    return entries


def run(files, catalog_file, chaos_text, chaos_rel):
    findings = []
    files = list(files)
    sites = collect_sites(files)

    def emit(sf, line_no, message):
        if not sf.allowed("fault", line_no):
            findings.append(source.Finding(sf.rel, line_no, "fault", message))

    # 1a. Site uniqueness.
    first_site = {}
    for sf, line_no, name in sites:
        if name in first_site:
            prev_sf, prev_line = first_site[name]
            emit(
                sf,
                line_no,
                f"fault point '{name}' already instrumented at "
                f"{prev_sf.rel}:{prev_line} — points must be unique so they "
                "can be armed independently",
            )
        else:
            first_site[name] = (sf, line_no)

    if catalog_file is None:
        # Without a catalog every site is an orphan.
        for sf, line_no, name in sites:
            emit(sf, line_no, f"fault point '{name}' has no catalog (fault_points.h not found)")
        return findings

    catalog = collect_catalog(catalog_file)

    # 1b. Catalog uniqueness.
    seen = {}
    for line_no, name in catalog:
        if name in seen:
            emit(
                catalog_file,
                line_no,
                f"catalog lists '{name}' more than once (first at line {seen[name]})",
            )
        else:
            seen[name] = line_no

    # 2. Site <-> catalog cross-check.
    for sf, line_no, name in sites:
        if name not in seen:
            emit(
                sf,
                line_no,
                f"fault point '{name}' is not declared in "
                f"{catalog_file.rel} — add it to the catalog (or fix the "
                "typo: a misspelled point can be armed but never fires)",
            )
    site_names = set(first_site)
    for line_no, name in catalog:
        if name not in site_names:
            emit(
                catalog_file,
                line_no,
                f"catalog entry '{name}' has no DIDO_FAULT_POINT site — "
                "remove the stale entry or restore the instrumentation",
            )

    # 3. Chaos-test rehearsal.
    for line_no, name in catalog:
        if name in site_names and (chaos_text is None or name not in chaos_text):
            where = chaos_rel if chaos_text is not None else "tests/chaos_test.cc (missing)"
            emit(
                catalog_file,
                line_no,
                f"fault point '{name}' is never referenced by {where} — "
                "every failure mode needs at least one chaos test arming it",
            )
    return findings
