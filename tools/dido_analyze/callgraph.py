"""Call-graph model shared by the hot / own / resp passes.

Builds, from the discovered SourceFiles, a `Model` of every function
definition in the tree: its (possibly class-qualified) name, source extent,
body lines, the names it calls, and the contract markers (DIDO_HOT,
DIDO_TRANSFERS_OWNERSHIP, DIDO_MUST_RESPOND) attached to its declaration or
definition.  The passes then do reachability walks and per-statement checks
on top of this model.

Three backends produce the same Model shape:

  text        -- pure-Python brace/statement tracking (always available;
                 the reference semantics every other backend must match).
  libclang    -- clang Python bindings + compile_commands.json: function
                 extents and qualified names come from the real AST, which
                 sees through templates, operators, and macros the textual
                 parser skips.  Body-line primitives are still matched
                 textually on the same source lines, so findings are
                 line-identical with the text backend wherever both see a
                 function.
  clang-json  -- `clang -Xclang -ast-dump=json` per translation unit, for
                 environments with a clang binary but no Python bindings
                 (the CI case).  Same extent-refinement contract.

Backend resolution and the AST plumbing live in clang_backend.py; both AST
backends degrade to `text` with a stderr notice on any failure, so the
analyzer's exit status never depends on clang being healthy.

Known blind spots of the textual backend (accepted, documented):
  * operator overloads and conversion functions are not modeled as
    definitions (their bodies are still brace-tracked, just unattributed);
  * calls through function pointers / std::function are invisible;
  * Status factory returns (`Status::OutOfMemory(...)`) construct a
    std::string but are not treated as hot-path allocation — they only run
    on failure paths, which are by definition off the hot path.
"""

import re

from . import source

MARKERS = ("DIDO_HOT", "DIDO_COLD", "DIDO_TRANSFERS_OWNERSHIP",
           "DIDO_MUST_RESPOND")

# Identifier (possibly Class::Name) directly followed by an argument list.
_NAME_CALL_RE = re.compile(
    r"([A-Za-z_~][\w]*(?:::[A-Za-z_~][\w]*)*)\s*\(")

# Statement heads that open a brace but are not function definitions.
_NON_FUNC_KEYWORDS = frozenset((
    "if", "else", "for", "while", "switch", "do", "catch", "return",
    "sizeof", "alignof", "static_assert", "decltype", "new", "delete",
    "case", "default", "try", "throw", "co_return", "co_await",
))

# Identifiers collected as potential call edges from a body line.  The
# resolver later keeps only names that match an in-tree definition, so std::
# and member-container noise (push_back, load, ...) drops out naturally.
_CALL_EDGE_RE = re.compile(r"\b([A-Za-z_][\w]*)\s*\(")

# --- impurity primitives (hot pass) ---------------------------------------
# Each matches against a comment/string-stripped source line.  Findings are
# reported at the matching line, in the file that owns it, with the call
# path from the DIDO_HOT root in the message.

LOCK_RE = re.compile(
    r"\b(?:MutexLock|UniqueMutexLock)\s+\w+\s*\("
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|[.->]\s*(?:Lock|lock|try_lock)\s*\(")

ALLOC_RE = re.compile(
    r"\bnew\b"
    r"|\bstd::make_(?:unique|shared)\b|\bmake_(?:unique|shared)\s*<"
    r"|\b(?:malloc|calloc|realloc|strdup)\s*\("
    r"|\.(?:push_back|emplace_back|emplace|insert|resize|reserve|append"
    r"|assign)\s*\("
    r"|\bstd::to_string\s*\(|\bstd::string\s*\(")

BLOCK_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep)\s*\("
    r"|\.join\s*\("
    r"|\.\s*[Ww]ait(?:For|_for|_until|ForSpace)?\s*\(")

SYSCALL_RE = re.compile(
    r"\bDIDO_LOG\s*\(\s*(?!Fatal\b)\w+\s*\)"
    r"|\b(?:printf|fprintf|snprintf|fopen|fwrite|fread|fflush|write|read)"
    r"\s*\("
    r"|\bstd::c(?:out|err|log)\b")

PRIMITIVES = (
    ("lock", LOCK_RE, "mutex acquisition"),
    ("alloc", ALLOC_RE, "heap allocation"),
    ("block", BLOCK_RE, "blocking wait"),
    ("syscall", SYSCALL_RE, "syscall/logging"),
)


class FunctionDef:
    """One function definition: extent, body lines, callees, markers."""

    def __init__(self, name, qual, sf, head_line):
        self.name = name          # unqualified: "RunIndexSearch"
        self.qual = qual          # best-effort: "KvRuntime::RunIndexSearch"
        self.sf = sf              # owning SourceFile
        self.head_line = head_line
        self.end_line = head_line
        self.body = []            # [(line_no, stripped_text)] incl. head
        self.callees = set()      # unqualified names of calls in the body
        self.call_lines = {}      # callee name -> set of call-site line_nos
        self.markers = set()      # MARKERS present on the definition head

    def add_line(self, line_no, stripped):
        self.body.append((line_no, stripped))
        self.end_line = line_no
        for m in _CALL_EDGE_RE.finditer(stripped):
            name = m.group(1)
            if name not in _NON_FUNC_KEYWORDS:
                self.callees.add(name)
                self.call_lines.setdefault(name, set()).add(line_no)

    def statements(self):
        """Yields (first_line_no, text) per `;`/`{`/`}`-terminated statement.

        Brace characters terminate statements but are not included, so an
        `if (...) {` head and its block body come out as separate
        statements — enough structure for the own/resp passes.
        """
        acc, acc_line = [], None
        for line_no, text in self.body:
            for piece in re.split(r"([;{}])", text):
                if piece in (";", "{", "}"):
                    stmt = " ".join(acc).strip()
                    if piece == ";":
                        stmt = (stmt + ";").strip()
                    if stmt and stmt not in (";",):
                        yield (acc_line if acc_line is not None else line_no,
                               stmt)
                    acc, acc_line = [], None
                elif piece.strip():
                    if acc_line is None:
                        acc_line = line_no
                    acc.append(piece.strip())
        if acc:
            yield (acc_line, " ".join(acc).strip())


class Model:
    """All function definitions in the tree plus declaration markers."""

    def __init__(self):
        self.functions = []
        self.by_name = {}       # unqualified name -> [FunctionDef]
        self.decl_markers = {}  # unqualified name -> set of MARKERS

    def add(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)

    def add_decl_marker(self, name, marker):
        self.decl_markers.setdefault(name, set()).add(marker)

    def markers_of(self, fn):
        return fn.markers | self.decl_markers.get(fn.name, set())

    def annotated(self, marker):
        """Every FunctionDef whose declaration or definition carries marker."""
        return [fn for fn in self.functions if marker in self.markers_of(fn)]


# A declaration is `Name(...)` ... markers ... `;` with no `{` between the
# close-paren and the semicolon (a definition would have one).  DOTALL lets
# parameter lists span lines; one declaration may carry several markers.
_DECL_MARKER_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\((?:[^()]|\([^()]*\))*\)([^;{}]*?;)",
    re.DOTALL)
_MARKER_RE = re.compile(r"\b(" + "|".join(MARKERS) + r")\b")


def _collect_decl_markers(model, sf):
    text = "\n".join(
        source.strip_comments_and_strings(l) for l in sf.lines)
    for m in _DECL_MARKER_RE.finditer(text):
        for marker in _MARKER_RE.findall(m.group(2)):
            model.add_decl_marker(m.group(1), marker)


def _head_function_name(head):
    """Function (or ctor) name from a `{`-opening statement head, or None."""
    first = head.split(None, 1)[0] if head.split() else ""
    if first in ("class", "struct", "enum", "namespace", "union",
                 "extern", "template", "typedef", "using"):
        return None
    # Skip over return types like Result<KvObject*>: take the first
    # identifier followed by '(' that is not a keyword and not immediately
    # preceded by a template angle bracket.
    for m in _NAME_CALL_RE.finditer(head):
        name = m.group(1)
        base = name.split("::")[-1]
        if base in _NON_FUNC_KEYWORDS or base.isupper():
            continue  # control flow or a macro like DIDO_CHECK
        # `= {`-style initializers: `const X kTable[] = {...}` never has
        # Name( before '='; a match inside a default argument would, but
        # those occur only in declarations (which end with ';', not '{').
        return name
    return None


class _Scope:
    __slots__ = ("kind", "name", "fn")

    def __init__(self, kind, name=None, fn=None):
        self.kind = kind  # "namespace" | "class" | "func" | "block"
        self.name = name
        self.fn = fn


def build_text_model(files):
    """Reference backend: textual brace/statement tracking over files."""
    model = Model()
    for sf in files:
        _collect_decl_markers(model, sf)
        _parse_file(model, sf)
    return model


def _parse_file(model, sf):
    scopes = []    # innermost last
    acc = []       # statement-head accumulator since last ; { } (chars)
    acc_start = 1  # line where acc last became non-empty

    def innermost_fn():
        for scope in reversed(scopes):
            if scope.kind == "func":
                return scope.fn
        return None

    def class_name():
        names = [s.name for s in scopes if s.kind == "class" and s.name]
        return names[-1] if names else None

    for line_no, raw in enumerate(sf.lines, start=1):
        stripped = source.strip_comments_and_strings(raw)
        fn = innermost_fn()
        buf = []  # chars of this line attributed to the current fn

        def flush(target):
            if target is not None and "".join(buf).strip():
                target.add_line(line_no, "".join(buf).strip())
            del buf[:]

        for ch in stripped:
            if ch == "{":
                head = "".join(acc).strip()
                acc = []
                if fn is not None:
                    # A block (loop, lambda, init list) inside the body.
                    scopes.append(_Scope("block"))
                    buf.append(ch)
                    continue
                name = _head_function_name(head)
                first = head.split(None, 1)[0] if head.split() else ""
                if first in ("class", "struct") and name is None:
                    m = re.match(r"(?:class|struct)\s+(?:\w+\s+)*?(\w+)",
                                 head)
                    scopes.append(
                        _Scope("class", m.group(1) if m else None))
                elif first == "namespace":
                    m = re.match(r"namespace\s+([\w:]+)?", head)
                    scopes.append(
                        _Scope("namespace", m.group(1) if m else None))
                elif name is not None and "=" not in head.split("(")[0]:
                    qual = name
                    if "::" not in name and class_name():
                        qual = f"{class_name()}::{name}"
                    new_fn = FunctionDef(name.split("::")[-1], qual, sf,
                                         acc_start)
                    for marker in MARKERS:
                        if re.search(rf"\b{marker}\b", head):
                            new_fn.markers.add(marker)
                    # The accumulated head (may span lines; includes ctor
                    # initializer lists, which hold call edges) opens the
                    # body extent.
                    new_fn.add_line(acc_start, head + " {")
                    model.add(new_fn)
                    scopes.append(_Scope("func", fn=new_fn))
                    fn = new_fn
                    del buf[:]
                else:
                    scopes.append(_Scope("block"))
            elif ch == "}":
                if fn is not None:
                    buf.append(ch)
                if scopes:
                    closing = scopes.pop()
                    if closing.kind == "func" and closing.fn is not None:
                        flush(closing.fn)
                        closing.fn.end_line = line_no
                        fn = innermost_fn()
                acc = []
            elif ch == ";":
                acc = []
                if fn is not None:
                    buf.append(ch)
            else:
                if fn is None:
                    if ch.strip() and not acc:
                        acc_start = line_no
                    acc.append(ch)
                else:
                    buf.append(ch)
        # Line break = token boundary for a multi-line statement head.
        if fn is None and acc:
            acc.append(" ")
        flush(fn)


def build_model(files, backend="text", compile_commands=None):
    """Builds a Model with the requested backend, degrading to text.

    Returns (model, resolved_backend_name).  Degradation prints a notice to
    stderr (via clang_backend) so CI logs show which backend actually ran.
    """
    if backend in ("libclang", "clang-json"):
        from . import clang_backend
        model = clang_backend.build_ast_model(files, backend,
                                              compile_commands)
        if model is not None:
            return model, backend
        backend = "text"
    return build_text_model(files), "text"


def reachable(model, roots, prune_pass=None):
    """BFS over call edges from `roots`.

    Returns {FunctionDef: path} where path is the chain of function names
    from a root to that definition (roots map to a one-element path).
    Resolution is by unqualified name — conservative: a name shared by
    several definitions pulls all of them in.  Only CamelCase names (the
    repo's method convention) are resolved: lowercase callees like
    `.size()` / `.ok()` are ubiquitous STL/accessor spellings whose
    name-only resolution would wire every kernel to every container-like
    class in the tree.  Lowercase primitives are still caught by the
    regexes; a lowercase in-tree function that locks is a (documented)
    blind spot.

    Two pruning mechanisms keep justified hand-offs out of the walk:

      * a callee marked DIDO_COLD is an explicit boundary (its job is the
        impurity) — the walk never enters it;
      * when `prune_pass` is given (the hot pass passes "hot"), an edge is
        skipped if *every* call site of that callee in the caller sits on a
        line suppressed for that pass: one reasoned
        `dido-analyze: allow(hot)` comment at the call site justifies the
        entire subtree behind the call, instead of demanding a comment at
        every primitive the subtree happens to contain.
    """
    paths = {}
    queue = []
    for root in roots:
        if root not in paths:
            paths[root] = (root.qual,)
            queue.append(root)
    while queue:
        fn = queue.pop(0)
        for callee_name in sorted(fn.callees):
            if not callee_name[0].isupper():
                continue
            if prune_pass is not None:
                sites = fn.call_lines.get(callee_name, ())
                if sites and all(fn.sf.allowed(prune_pass, line)
                                 for line in sites):
                    continue
            for callee in model.by_name.get(callee_name, ()):
                if callee in paths:
                    continue
                if "DIDO_COLD" in model.markers_of(callee):
                    continue
                paths[callee] = paths[fn] + (callee.qual,)
                queue.append(callee)
    return paths
