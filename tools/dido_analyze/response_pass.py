"""Response-completeness pass: error exits must account for the request.

Functions annotated DIDO_MUST_RESPOND are on the request path where the
chaos suite asserts `ingested - shed == responses` dynamically.  This pass
makes the static half of that contract explicit: every `continue`, `break`,
or `return` that executes under an *error condition* must first produce a
response (set a record's response status, push/encode a response frame) or
increment a shed/error counter inside the guarded block.

What counts as an error condition (the guard of the innermost enclosing
`if`): `!...ok()`, a failure StatusCode constant (kTimeout, kError,
kOutOfMemory, kResourceBusy, kCapacityFull, kNotFound), or spellings of
fail/malformed.  Deliberately *not* error conditions: `kClosed` and
`== nullptr` — queue shutdown and empty-pop are lifecycle exits, not lost
requests.  `return`s that propagate a Status are always compliant (the
caller owns the response).  Loop conditions (`for`/`while`) are not guards.

Suppress with `dido-analyze: allow(resp): <reason>`.
"""

import re

from . import callgraph, source

ERROR_COND_RE = re.compile(
    r"!\s*[\w.>\-]*\bok\s*\(\)"
    r"|\bk(?:Timeout|Error|OutOfMemory|ResourceBusy|CapacityFull"
    r"|NotFound|Malformed)\b"
    r"|[Ff]ail|[Mm]alformed")

RESPONSE_EVENT_RE = re.compile(
    r"\.status\s*=|\bResponseStatus\b|\bEncodeResponse\s*\("
    r"|\bBump\s*\(|\.push_back\s*\(|\bAppendRecord\s*\("
    r"|\b\w*(?:shed|error|failed|malformed|dropped|retr)\w*\s*"
    r"(?:\+=|\+\+|\.fetch_add)"
    r"|\bNote\w*(?:Failure|Shed|Error)\w*\s*\(")

# Matched against a `;`-less statement piece (the splitter strips it).
_EXIT_RE = re.compile(r"^(?:continue|break)\s*$|^return\b")
_STATUS_RETURN_RE = re.compile(r"^return\b[^;]*\b[Ss]tatus\b")


def _if_condition(stmt):
    """Condition text when stmt is an `if (...)`/`else if (...)` head."""
    m = re.match(r"(?:\}?\s*else\s+)?if\s*\((.*)\)\s*$", stmt)
    if m:
        return m.group(1)
    # One-liner: `if (cond) <exit>;` — condition plus inline body.
    m = re.match(r"(?:\}?\s*else\s+)?if\s*\((.*?)\)\s*(\S.*)$", stmt)
    return m.group(1) if m else None


def run(files, model=None):
    if model is None:
        model = callgraph.build_text_model(files)
    findings = []
    for fn in model.annotated("DIDO_MUST_RESPOND"):
        findings.extend(_check(fn))
    return findings


def _check(fn):
    findings = []
    # Reconstruct rough block structure from the body's brace characters:
    # a stack of (condition_text_or_None, had_response_event).
    stack = []
    pending_if = None  # condition of an `if (...)` head awaiting its `{`
    for line_no, text in fn.body:
        for piece in re.split(r"([{};])", text):
            stripped = piece.strip()
            if piece == "{":
                stack.append([pending_if, False])
                pending_if = None
                continue
            if piece == "}":
                if stack:
                    stack.pop()
                continue
            if not stripped and piece != ";":
                continue
            if piece == ";":
                continue
            stmt = stripped
            head = re.match(r"(?:\}?\s*else\s+)?if\s*\((.*)\)\s*$", stmt)
            if head is not None:
                # `if (...)` head: its condition guards the next `{` block
                # or (brace-less) the single next statement.
                pending_if = head.group(1)
                continue
            inline = re.match(
                r"(?:\}?\s*else\s+)?if\s*\((.*?)\)\s*"
                r"((?:continue|break|return)\b.*)$", stmt)
            if inline is not None:
                cond, exit_stmt = inline.group(1), inline.group(2)
                if (ERROR_COND_RE.search(cond)
                        and not _compliant_exit(exit_stmt, stmt)):
                    findings.extend(_report(fn, line_no, exit_stmt, cond))
                pending_if = None
                continue
            if RESPONSE_EVENT_RE.search(stmt):
                for frame in stack:
                    frame[1] = True
                pending_if = None
                continue
            if _EXIT_RE.match(stmt):
                if pending_if is not None:
                    # Brace-less `if (cond)` directly above this exit.
                    guard, responded = pending_if, False
                else:
                    guard, responded = None, False
                    for cond_text, had_event in reversed(stack):
                        if had_event:
                            responded = True
                        if cond_text is not None:
                            guard = cond_text
                            break
                pending_if = None
                if guard is None or not ERROR_COND_RE.search(guard):
                    continue
                if responded or _compliant_exit(stmt, stmt):
                    continue
                findings.extend(_report(fn, line_no, stmt, guard))
                continue
            pending_if = None
    return findings


def _compliant_exit(exit_stmt, full_stmt):
    return (_STATUS_RETURN_RE.match(exit_stmt) is not None
            or RESPONSE_EVENT_RE.search(full_stmt) is not None)


def _report(fn, line_no, exit_stmt, guard):
    if fn.sf.allowed("resp", line_no):
        return []
    kind = exit_stmt.split(None, 1)[0].rstrip(";")
    return [source.Finding(
        fn.sf.rel, line_no, "resp",
        f"'{kind}' under error condition '({guard.strip()})' in "
        f"'{fn.qual}' leaves without a response frame, record status, or "
        "shed/error counter — breaks ingested-shed == responses")]
