"""Allocation-ownership pass: DIDO_TRANSFERS_OWNERSHIP results must not leak.

A call to a DIDO_TRANSFERS_OWNERSHIP function (MemoryManager::AllocateObject,
KvRuntime::AllocateWithEviction, SlabAllocator::Allocate) yields an owned
object.  Within the calling function, on every statement-level control-flow
path after the call, the bound result must reach a *sink* before the
function can exit successfully:

  * publication: an index Insert (or assignment into a record/field) that
    mentions the bound variable,
  * retirement:  RetireObject / RetireDetached / RetireBatch / Free /
    ReleaseDetached mentioning it,
  * hand-off:    `return <v>` from a function that itself carries
                 DIDO_TRANSFERS_OWNERSHIP.

Failure-path returns are exempt: a `return` that mentions the bound
variable's `.status()`, or spells `Status`/`status`, only runs when the
allocation failed (Result propagation) — the callee never transferred
ownership on that path.  This is a statement-order approximation, not full
data-flow: a return textually *after* the first sink is treated as covered.

Violations:
  * a success-capable `return` before any sink that does not mention the
    bound variable or a status  -> potential leak at that return,
  * a call whose result is discarded outright,
  * a bound result with no sink anywhere in the function.

Suppress with `dido-analyze: allow(own): <reason>`.
"""

import re

from . import callgraph, source

_SINK_CALL_RE = re.compile(
    r"\b(?:RetireObject|RetireDetached|RetireBatch|ReleaseDetached"
    r"|Free|FreeObject|Insert)\s*\(")

_STATUS_RETURN_RE = re.compile(r"\breturn\b[^;]*\b[Ss]tatus\b")


def _binding_var(stmt, call_start):
    """Variable a `<type> v = <receiver.>AllocCall(...)` statement binds.

    The receiver chain between `=` and the call (`allocator_.`,
    `memory_->`, `SlabAllocator::`) is skipped; returns None for a
    discarded result.
    """
    before = stmt[:call_start]
    m = re.search(r"([A-Za-z_]\w*)\s*=\s*[\w\s.:>-]*$", before)
    return m.group(1) if m else None


def run(files, model=None):
    if model is None:
        model = callgraph.build_text_model(files)
    sources = {fn.name for fn in model.annotated("DIDO_TRANSFERS_OWNERSHIP")}
    sources |= {name for name, markers in model.decl_markers.items()
                if "DIDO_TRANSFERS_OWNERSHIP" in markers}
    if not sources:
        return []
    src_call_re = re.compile(
        r"(?:\b|->|\.)(" + "|".join(sorted(sources)) + r")\s*\(")

    findings = []
    for fn in model.functions:
        stmts = list(fn.statements())
        handoff = "DIDO_TRANSFERS_OWNERSHIP" in model.markers_of(fn)
        # [(bind_line, var, sink_seen)]
        obligations = []
        for line_no, stmt in stmts:
            m = src_call_re.search(stmt)
            if m is not None and fn.name != m.group(1):
                var = _binding_var(stmt, m.start())
                if var is None and stmt.startswith("return"):
                    # `return Allocate(...)`: ownership flows to our caller.
                    if not handoff and not fn.sf.allowed("own", line_no):
                        findings.append(source.Finding(
                            fn.sf.rel, line_no, "own",
                            f"'{fn.qual}' returns the owned result of "
                            f"'{m.group(1)}' but is not annotated "
                            "DIDO_TRANSFERS_OWNERSHIP"))
                    continue
                if var is None:
                    if not fn.sf.allowed("own", line_no):
                        findings.append(source.Finding(
                            fn.sf.rel, line_no, "own",
                            f"result of '{m.group(1)}' is discarded — the "
                            "allocation leaks on success"))
                    continue
                obligations.append([line_no, var, False])
                continue

            for ob in obligations:
                bind_line, var, sink_seen = ob
                if sink_seen:
                    continue
                mentions = re.search(rf"\b{re.escape(var)}\b", stmt)
                if mentions and (_SINK_CALL_RE.search(stmt)
                                 or re.search(
                                     rf"=\s*[*&]?\s*{re.escape(var)}\b",
                                     stmt)):
                    ob[2] = True
                    continue
                if stmt.startswith("return"):
                    if mentions or _STATUS_RETURN_RE.search(stmt):
                        # Propagates the result (hand-off / failure path).
                        continue
                    if not fn.sf.allowed("own", line_no):
                        findings.append(source.Finding(
                            fn.sf.rel, line_no, "own",
                            f"'{fn.qual}' can return here while the "
                            f"allocation bound to '{var}' (line "
                            f"{bind_line}) has reached no Insert/Retire/"
                            "Free sink — potential slab leak"))
                        ob[2] = True  # one report per obligation

        for bind_line, var, sink_seen in obligations:
            if sink_seen:
                continue
            # No sink anywhere: ok only if some return propagated the var.
            if any(stmt.startswith("return")
                   and re.search(rf"\b{re.escape(var)}\b", stmt)
                   for _, stmt in stmts):
                continue
            if not fn.sf.allowed("own", bind_line):
                findings.append(source.Finding(
                    fn.sf.rel, bind_line, "own",
                    f"allocation bound to '{var}' in '{fn.qual}' is never "
                    "published (Insert), retired, freed, or returned"))
    return findings
