"""dido_analyze: project-specific static analysis for DIDO invariants.

Seven passes over the C++ tree, each enforcing a contract the compiler
cannot see:

  epoch    -- calls to DIDO_REQUIRES_EPOCH functions (retire-able-memory
              APIs) must happen inside an EpochGuard / EpochPin /
              ScopedEpochParticipant scope.
  fault    -- every DIDO_FAULT_POINT name is unique, cataloged in
              src/faults/fault_points.h, and rehearsed by
              tests/chaos_test.cc.
  lock     -- in any class that owns a Mutex, every mutable non-atomic
              data member must carry DIDO_GUARDED_BY (or an explicit
              allow comment saying why not).
  hot      -- nothing reachable through the call graph from a DIDO_HOT
              stage kernel may acquire a mutex, allocate, log, or block
              (hot-path purity; keeps the paper's Fig. 4 stage-time model
              honest and underwrites ROADMAP item 3).
  own      -- the result of a DIDO_TRANSFERS_OWNERSHIP allocation must,
              on every path through the caller, reach an index insert,
              a Retire*/Free, or an annotated hand-off — no silent slab
              leaks on eviction/retry refactors.
  resp     -- every error-guarded early exit in a DIDO_MUST_RESPOND
              function must produce a response or bump a shed/error
              counter: the static half of the chaos suite's
              `ingested - shed == responses` arithmetic.
  memorder -- every memory_order_relaxed carries a justifying "relaxed"
              comment nearby (absorbed from tools/check_memory_order.py;
              that path remains as a deprecation shim).

Suppressions (all passes, same grammar):

  // dido-analyze: allow(<pass>): <reason>          same or next line
  // dido-analyze: begin-allow(<pass>): <reason>    region start
  // dido-analyze: end-allow(<pass>)                region end

The default backend is purely textual (regex + brace/statement tracking)
so it runs anywhere Python runs.  `--backend auto` upgrades the lock pass
and the call-graph passes (hot/own/resp) to a real Clang AST when one is
reachable: libclang bindings first, then `clang -Xclang -ast-dump=json`
(so CI needs only the clang binary already used by the thread-safety
preset), each requiring a compile_commands.json and degrading to the
textual backend with a stderr notice otherwise.  AST extents refine *which
lines belong to which function*; the contract matching itself stays
textual on those lines, so backends agree wherever they both see a
function, and the analyzer's exit status never depends on clang health.
"""

__all__ = [
    "source", "callgraph", "clang_backend", "epoch_pass", "fault_pass",
    "lock_pass", "hot_pass", "ownership_pass", "response_pass",
    "memorder_pass",
]
