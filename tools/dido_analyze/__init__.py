"""dido_analyze: project-specific static analysis for DIDO invariants.

Three passes over the C++ tree, each enforcing a concurrency contract the
compiler cannot see:

  epoch  -- calls to DIDO_REQUIRES_EPOCH functions (retire-able-memory APIs)
            must happen inside an EpochGuard / EpochPin /
            ScopedEpochParticipant scope.
  fault  -- every DIDO_FAULT_POINT name is unique, cataloged in
            src/faults/fault_points.h, and rehearsed by tests/chaos_test.cc.
  lock   -- in any class that owns a Mutex, every mutable non-atomic data
            member must carry DIDO_GUARDED_BY (or an explicit allow
            comment saying why not).

Suppressions (all passes):

  // dido-analyze: allow(<pass>): <reason>          same or next line
  // dido-analyze: begin-allow(<pass>): <reason>    region start
  // dido-analyze: end-allow(<pass>)                region end

The default backend is purely textual (regex + brace tracking) so it runs
anywhere Python runs.  `--backend clang` uses libclang's AST for the lock
pass when the clang Python bindings are installed, and degrades to the
textual backend (with a notice) when they are not.
"""

__all__ = ["source", "epoch_pass", "fault_pass", "lock_pass"]
