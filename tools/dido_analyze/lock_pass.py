"""Lock-annotation pass: classes that own a Mutex annotate their state.

In any class that has a `dido::Mutex` (or raw `std::mutex`) data member,
every other data member is assumed to be lock-protected unless it is
self-evidently not:

  * `std::atomic` / `Atomic*` members synchronize themselves;
  * `const` members are immutable after construction;
  * the Mutex / CondVar members are the synchronization primitives.

Everything else must carry DIDO_GUARDED_BY(...) — or a
`dido-analyze: allow(lock)` comment stating why the field is safe without
the capability (published-before-spawn, registration-ordered, etc.).  This
is what keeps the Clang thread-safety analysis honest: TSA only checks
fields that are annotated, so the gap it cannot see is an annotated class
quietly growing an unannotated field.

The textual backend parses class bodies with a brace tracker and a
statement accumulator; `--backend clang` replaces it with a libclang AST
walk when the bindings are installed.

Heuristic limits (textual): members are recognized by the trailing-
underscore naming convention, so a Mutex-owning class with a bare-named
field slips through; /* */ comments are not handled.  Both are repo-style
violations first and analyzer gaps second.
"""

import re

from . import source

ANNOTATION_RE = re.compile(r"\bDIDO_[A-Z_]+(?:\s*\(([^()]*(?:\([^()]*\))?[^()]*)\))?")
CLASS_HEAD_RE = re.compile(r"\b(class|struct)\s+([\w:]+)")
ACCESS_RE = re.compile(r"\b(?:public|private|protected)\s*:")
MEMBER_RE = re.compile(r"\b(\w+_)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*|\{[^{}]*\})?\s*$")
MUTEX_TYPE_RE = re.compile(r"(?:^|[^\w:])(?:Mutex|std::mutex)\s*&?\s*$|(?:^|[^\w:])(?:Mutex|std::mutex)\s*&?\s+\w")
SELF_SYNC_RE = re.compile(r"std::atomic|Atomic|(?:^|[^\w:])(?:Mutex|std::mutex|CondVar|std::condition_variable)(?:[^\w]|$)")
INIT_TAIL_RE = re.compile(r"(?:\w+_|=|\])\s*$")


class _Member:
    def __init__(self, name, line, guarded, text):
        self.name = name
        self.line = line
        self.guarded = guarded
        self.text = text  # annotation-stripped declaration


class _ClassScope:
    def __init__(self, name):
        self.name = name
        self.members = []
        self.owns_mutex = False


def _strip_annotations(stmt):
    """Removes DIDO_* attribute macros; returns (stripped, had_guarded_by)."""
    guarded = False

    def repl(m):
        nonlocal guarded
        if m.group(0).startswith("DIDO_GUARDED_BY"):
            guarded = True
        return " "

    return ANNOTATION_RE.sub(repl, stmt), guarded


def _analyze_statement(stmt, line, scope):
    stmt, guarded = _strip_annotations(stmt)
    stmt = ACCESS_RE.sub(" ", stmt).strip()
    if not stmt or stmt.startswith(("using ", "typedef ", "friend ", "static ")):
        return
    if "(" in stmt or ")" in stmt:
        return  # function declaration (annotation parens already stripped)
    m = MEMBER_RE.search(stmt)
    if not m:
        return
    if MUTEX_TYPE_RE.search(stmt):
        scope.owns_mutex = True
    scope.members.append(_Member(m.group(1), line, guarded, stmt))


def _flush_class(scope, sf, findings):
    if not scope.owns_mutex:
        return
    for member in scope.members:
        if member.guarded:
            continue
        if SELF_SYNC_RE.search(member.text):
            continue
        if re.match(r"\s*(?:mutable\s+)?const\b", member.text) or " const " in f" {member.text} ":
            continue
        if sf.allowed("lock", member.line):
            continue
        findings.append(
            source.Finding(
                sf.rel,
                member.line,
                "lock",
                f"field '{member.name}' of mutex-owning class "
                f"'{scope.name}' has no DIDO_GUARDED_BY annotation — "
                "annotate it, or add a 'dido-analyze: allow(lock)' comment "
                "explaining why it needs no capability",
            )
        )


def run(files):
    findings = []
    for sf in files:
        class_stack = []   # innermost last; _ClassScope or None for plain blocks
        init_depth = []    # depths of brace-initializer scopes (kept in stmt)
        stmt = []
        stmt_line = [None]  # first content line of the current statement

        def add(text, line_no):
            if stmt_line[0] is None and text.strip():
                stmt_line[0] = line_no
            stmt.append(text)

        def reset():
            stmt.clear()
            stmt_line[0] = None

        depth = 0
        for line_no, raw in enumerate(sf.lines, start=1):
            line = source.strip_comments_and_strings(raw)
            if re.match(r"\s*(?:public|private|protected)\s*:\s*$", line):
                # Statement boundary, so findings anchor to the member line
                # (where its allow comment lives), not the access specifier.
                reset()
                continue
            i = 0
            for m in re.finditer(r"[{};]", line):
                add(line[i : m.start()], line_no)
                tok = m.group()
                i = m.end()
                if tok == ";":
                    text = "".join(stmt)
                    if class_stack and class_stack[-1][0] is not None and depth == class_stack[-1][1]:
                        _analyze_statement(text, stmt_line[0] or line_no, class_stack[-1][0])
                    reset()
                elif tok == "{":
                    head, _ = _strip_annotations("".join(stmt))
                    head = head.replace(" final", " ")
                    cm = CLASS_HEAD_RE.search(head)
                    if cm and "enum" not in head and "template" not in head.split(cm.group(1))[-1]:
                        depth += 1
                        class_stack.append((_ClassScope(cm.group(2)), depth))
                        reset()
                    elif INIT_TAIL_RE.search("".join(stmt).rstrip()):
                        depth += 1
                        init_depth.append(depth)
                        add("{", line_no)  # keep initializer in the statement
                    else:
                        depth += 1
                        class_stack.append((None, depth))
                        reset()
                else:  # "}"
                    if init_depth and init_depth[-1] == depth:
                        init_depth.pop()
                        add("}", line_no)
                    elif class_stack and class_stack[-1][1] == depth:
                        scope, _ = class_stack.pop()
                        if scope is not None:
                            _flush_class(scope, sf, findings)
                        reset()
                    depth = max(0, depth - 1)
            add(line[i:], line_no)
            add("\n", line_no)
        # Whatever half-statement remains at EOF is discarded.
    return findings
