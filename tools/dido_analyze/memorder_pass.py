"""Memory-order justification pass (absorbed tools/check_memory_order.py).

Every `std::memory_order_relaxed` in an audited file must carry a comment
containing the word "relaxed" on the same line or within the preceding
JUSTIFICATION_WINDOW lines — forcing every downgrade from seq_cst/acq_rel
to spell out why it is safe.  The audit set is discovered, not maintained:
any scanned file mentioning `std::atomic` or `memory_order` is audited, so
a new lock-free component cannot dodge the check by not being on a list.

The standalone tools/check_memory_order.py is now a deprecation shim that
execs this pass; its OPT_OUT waiver list is replaced by the analyzer's
shared suppression syntax (`dido-analyze: allow(memorder): <reason>` or a
begin/end-allow region).
"""

import re

from . import source

JUSTIFICATION_WINDOW = 10  # lines of lookback for a justifying comment

# NOTE: `std::atomic|memory_order`, not \b-anchored `memory_order\b` —
# the latter fails to match `memory_order_relaxed` itself.
DISCOVERY_RE = re.compile(r"std::atomic|memory_order")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
COMMENT_RE = re.compile(r"//(.*)$")


def _line_has_justification(line):
    match = COMMENT_RE.search(line)
    return match is not None and "relaxed" in match.group(1).lower()


def run(files):
    findings = []
    for sf in files:
        if not DISCOVERY_RE.search(sf.text()):
            continue
        for i, line in enumerate(sf.lines):
            if not RELAXED_RE.search(line):
                continue
            if _line_has_justification(line):
                continue
            window = sf.lines[max(0, i - JUSTIFICATION_WINDOW):i]
            if any(_line_has_justification(prev) for prev in window):
                continue
            if sf.allowed("memorder", i + 1):
                continue
            findings.append(source.Finding(
                sf.rel, i + 1, "memorder",
                "memory_order_relaxed without a justifying 'relaxed' "
                f"comment within {JUSTIFICATION_WINDOW} lines: "
                f"{line.strip()}"))
    return findings
