"""Optional libclang backend for the lock pass.

When the clang Python bindings are installed (`python3 -c 'import
clang.cindex'` succeeds), the lock pass can walk the real AST instead of
the textual class parser: fields are CursorKind.FIELD_DECL, guards are the
`guarded_by` attribute Clang attaches from DIDO_GUARDED_BY, and mutex
ownership is a field whose canonical type spells dido::Mutex or std::mutex.

The container this project builds in does not ship the bindings, so this
module must import lazily and fail with a clear message — callers fall back
to the textual backend.
"""

from . import source


def available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def run_lock_pass(files, extra_args=None):
    """AST-based equivalent of lock_pass.run().  Raises ImportError when the
    clang bindings are missing (caller decides how to degrade)."""
    import clang.cindex as ci

    findings = []
    args = ["-x", "c++", "-std=c++20"] + list(extra_args or [])
    index = ci.Index.create()
    for sf in files:
        if sf.path.suffix != ".h":
            continue  # fields live in headers; .cc adds only noise
        tu = index.parse(str(sf.path), args=args,
                         options=ci.TranslationUnit.PARSE_INCOMPLETE)
        findings.extend(_scan_tu(tu, sf))
    return findings


def _scan_tu(tu, sf):
    import clang.cindex as ci

    findings = []

    def class_nodes(node):
        if node.kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            yield node
        for child in node.get_children():
            if child.location.file and str(child.location.file) == str(sf.path):
                yield from class_nodes(child)

    for cls in class_nodes(tu.cursor):
        fields = [c for c in cls.get_children()
                  if c.kind == ci.CursorKind.FIELD_DECL]
        if not any(_is_mutex_type(f.type.spelling) for f in fields):
            continue
        for f in fields:
            spelling = f.type.spelling
            if _is_mutex_type(spelling) or "atomic" in spelling \
                    or "Atomic" in spelling or "CondVar" in spelling:
                continue
            if f.type.is_const_qualified():
                continue
            if any(_is_guarded_attr(c) for c in f.get_children()):
                continue
            line = f.location.line
            if sf.allowed("lock", line):
                continue
            findings.append(source.Finding(
                sf.rel, line, "lock",
                f"field '{f.spelling}' of mutex-owning class "
                f"'{cls.spelling}' has no DIDO_GUARDED_BY annotation (clang "
                "backend)"))
    return findings


def _is_mutex_type(spelling):
    return spelling.split("::")[-1].rstrip(" &") in ("Mutex", "mutex")


def _is_guarded_attr(cursor):
    # guarded_by lowers to an UNEXPOSED_ATTR in older bindings; match by
    # the attribute's source text when the kind is not specific enough.
    import clang.cindex as ci
    if cursor.kind.is_attribute():
        try:
            tokens = " ".join(t.spelling for t in cursor.get_tokens())
        except Exception:
            tokens = cursor.spelling or ""
        return "guarded_by" in tokens or "GUARDED_BY" in tokens
    return False
