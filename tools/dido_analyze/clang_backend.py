"""Clang backends: libclang / `clang -Xclang -ast-dump=json` AST access.

Two responsibilities:

  1. the AST lock-pass backend from ISSUE 6 (run_lock_pass), which needs
     only the libclang Python bindings;
  2. the call-graph model builders for the hot/own/resp passes (ISSUE 7):
     `build_ast_model()` produces the same callgraph.Model shape as the
     textual parser, but with function extents and qualified names taken
     from the real AST — which sees through templates, operators, and
     macro-heavy heads the textual parser skips.  Within those extents the
     body lines, call edges, and impurity primitives are still matched
     textually on the same source lines, so findings stay line-identical
     with the text backend wherever both see a function.

Backend resolution (resolve_backend):

  libclang    needs `import clang.cindex` to succeed AND a
              compile_commands.json for per-TU flags;
  clang-json  needs only a clang binary (env DIDO_CLANG, else clang++ /
              clang / versioned names on PATH) AND compile_commands.json —
              this is the CI path: no Python bindings required;
  text        always available.

The container this project builds in ships neither clang nor the bindings,
so everything here imports/spawns lazily and degrades to the textual
backend with a stderr notice on *any* failure — the analyzer's exit status
must never depend on clang being healthy.
"""

import json
import os
import re
import shutil
import subprocess
import sys

from . import source


def available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def run_lock_pass(files, extra_args=None):
    """AST-based equivalent of lock_pass.run().  Raises ImportError when the
    clang bindings are missing (caller decides how to degrade)."""
    import clang.cindex as ci

    findings = []
    args = ["-x", "c++", "-std=c++20"] + list(extra_args or [])
    index = ci.Index.create()
    for sf in files:
        if sf.path.suffix != ".h":
            continue  # fields live in headers; .cc adds only noise
        tu = index.parse(str(sf.path), args=args,
                         options=ci.TranslationUnit.PARSE_INCOMPLETE)
        findings.extend(_scan_tu(tu, sf))
    return findings


def _scan_tu(tu, sf):
    import clang.cindex as ci

    findings = []

    def class_nodes(node):
        if node.kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            yield node
        for child in node.get_children():
            if child.location.file and str(child.location.file) == str(sf.path):
                yield from class_nodes(child)

    for cls in class_nodes(tu.cursor):
        fields = [c for c in cls.get_children()
                  if c.kind == ci.CursorKind.FIELD_DECL]
        if not any(_is_mutex_type(f.type.spelling) for f in fields):
            continue
        for f in fields:
            spelling = f.type.spelling
            if _is_mutex_type(spelling) or "atomic" in spelling \
                    or "Atomic" in spelling or "CondVar" in spelling:
                continue
            if f.type.is_const_qualified():
                continue
            if any(_is_guarded_attr(c) for c in f.get_children()):
                continue
            line = f.location.line
            if sf.allowed("lock", line):
                continue
            findings.append(source.Finding(
                sf.rel, line, "lock",
                f"field '{f.spelling}' of mutex-owning class "
                f"'{cls.spelling}' has no DIDO_GUARDED_BY annotation (clang "
                "backend)"))
    return findings


def _notice(msg):
    print(f"dido_analyze: {msg}", file=sys.stderr)


def find_clang():
    """Path of a usable clang binary, or None.  DIDO_CLANG pins it."""
    pinned = os.environ.get("DIDO_CLANG")
    if pinned:
        found = shutil.which(pinned)
        if found:
            return found
        _notice(f"DIDO_CLANG='{pinned}' not found on PATH")
    for name in ("clang++", "clang", "clang++-18", "clang-18",
                 "clang++-17", "clang-17", "clang++-16", "clang-16",
                 "clang++-15", "clang-15", "clang++-14", "clang-14"):
        found = shutil.which(name)
        if found:
            return found
    return None


def find_compile_commands(root, explicit=None):
    """compile_commands.json path: explicit flag, env var, or build dirs."""
    candidates = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("DIDO_COMPILE_COMMANDS")
    if env:
        candidates.append(env)
    for sub in ("build", "build-ccdb", "build-release", "build-asan",
                "build-tsan", "build-thread-safety"):
        candidates.append(os.path.join(str(root), sub,
                                       "compile_commands.json"))
    for cand in candidates:
        if cand and os.path.isfile(cand):
            return cand
    return None


def resolve_backend(requested, root, compile_commands=None):
    """Maps a --backend request to what this machine can actually run.

    Returns (backend_name, compile_commands_path_or_None).  'clang' (the
    pre-ISSUE-7 spelling) and 'auto' both mean "best available AST backend,
    else text"; explicit 'libclang'/'clang-json' requests degrade to text
    with a notice when their prerequisites are missing.
    """
    ccdb = find_compile_commands(root, compile_commands)
    if requested == "text":
        return "text", ccdb
    want_auto = requested in ("auto", "clang")
    if requested == "libclang" or want_auto:
        if available() and ccdb:
            return "libclang", ccdb
        if requested == "libclang":
            _notice("libclang backend unavailable (bindings or "
                    "compile_commands.json missing); using text")
            return "text", ccdb
    if requested == "clang-json" or want_auto:
        if find_clang() and ccdb:
            return "clang-json", ccdb
        if requested == "clang-json":
            _notice("clang-json backend unavailable (clang binary or "
                    "compile_commands.json missing); using text")
            return "text", ccdb
    if requested in ("libclang", "clang-json"):
        return "text", ccdb
    if not want_auto:
        return "text", ccdb
    return "text", ccdb


# --------------------------------------------------------- AST call graph --


def build_ast_model(files, backend, compile_commands):
    """callgraph.Model via the requested AST backend, or None on failure.

    Extents and qualified names come from the AST; body lines / call edges
    / markers are extracted textually from the same extents, keeping
    findings line-identical with the text backend.  Files no TU covers
    (stray headers) are parsed textually so nothing silently drops out of
    the audit.
    """
    from . import callgraph

    try:
        if backend == "libclang":
            extents = _libclang_extents(files, compile_commands)
        else:
            extents = _json_extents(files, compile_commands)
    except Exception as err:  # noqa: BLE001 — any AST trouble => fallback
        _notice(f"{backend} backend failed ({err!r}); using text")
        return None
    if not extents:
        _notice(f"{backend} backend found no function extents; using text")
        return None

    by_path = {str(sf.path.resolve()): sf for sf in files}
    model = callgraph.Model()
    covered = set()
    for sf in files:
        callgraph._collect_decl_markers(model, sf)
    for (path, start, end), qual in sorted(extents.items()):
        sf = by_path.get(path)
        if sf is None or start < 1 or end > len(sf.lines):
            continue
        covered.add(path)
        name = qual.split("::")[-1]
        fn = callgraph.FunctionDef(name, qual, sf, start)
        for line_no in range(start, end + 1):
            stripped = source.strip_comments_and_strings(
                sf.lines[line_no - 1])
            fn.add_line(line_no, stripped)
        head = " ".join(t for _, t in fn.body[:3])
        for marker in callgraph.MARKERS:
            if re.search(rf"\b{marker}\b", head):
                fn.markers.add(marker)
        model.add(fn)
    leftovers = [sf for sf in files
                 if str(sf.path.resolve()) not in covered]
    for sf in leftovers:
        callgraph._parse_file(model, sf)
    return model


def _load_compile_db(compile_commands):
    with open(compile_commands, encoding="utf-8") as fh:
        entries = json.load(fh)
    db = {}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if "arguments" in entry:
            args = list(entry["arguments"])[1:]
        else:
            args = _split_command(entry.get("command", ""))[1:]
        # Drop the output/input parts; keep defines, includes, std flags.
        kept, skip = [], False
        for arg in args:
            if skip:
                skip = False
                continue
            if arg in ("-o", "-c", "--output"):
                skip = arg != "-c"
                continue
            if arg == entry["file"] or arg.endswith(entry["file"]):
                continue
            kept.append(arg)
        db[path] = (entry.get("directory", "."), kept)
    return db


def _split_command(command):
    # compile_commands "command" strings in this repo have no quoted args
    # with spaces; a plain split is sufficient and avoids shlex surprises.
    return command.split()


def _libclang_extents(files, compile_commands):
    import clang.cindex as ci

    db = _load_compile_db(compile_commands)
    wanted = {str(sf.path.resolve()) for sf in files}
    extents = {}
    index = ci.Index.create()
    for path, (directory, args) in sorted(db.items()):
        if path not in wanted:
            continue
        tu = index.parse(path, args=args)
        _walk_cursor(tu.cursor, wanted, extents)
    return extents


def _walk_cursor(cursor, wanted, extents):
    import clang.cindex as ci

    defn_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                  ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                  ci.CursorKind.FUNCTION_TEMPLATE)
    for child in cursor.get_children():
        loc_file = child.location.file
        path = str(loc_file) if loc_file else None
        if path is not None:
            path = os.path.realpath(path)
        if child.kind in defn_kinds and child.is_definition() \
                and path in wanted:
            qual = child.spelling
            parent = child.semantic_parent
            if parent is not None and parent.spelling and \
                    parent.kind != ci.CursorKind.TRANSLATION_UNIT:
                qual = f"{parent.spelling}::{child.spelling}"
            extents[(path, child.extent.start.line,
                     child.extent.end.line)] = qual
        _walk_cursor(child, wanted, extents)


def _json_extents(files, compile_commands):
    clang = find_clang()
    db = _load_compile_db(compile_commands)
    wanted = {str(sf.path.resolve()) for sf in files}
    extents = {}
    for path, (directory, args) in sorted(db.items()):
        if path not in wanted:
            continue
        cmd = [clang, *args, "-fsyntax-only", "-Xclang",
               "-ast-dump=json", path]
        proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                              text=True, timeout=600, check=False)
        if not proc.stdout.strip():
            raise RuntimeError(
                f"no AST JSON from {os.path.basename(clang)} for {path}: "
                f"{proc.stderr.strip()[:200]}")
        tree = json.loads(proc.stdout)
        _walk_json(tree, {"file": None, "line": None}, wanted, extents)
    return extents


_JSON_FUNC_KINDS = frozenset((
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl", "FunctionTemplateDecl"))


def _decode_loc(loc, state):
    """Decodes one differential source location, updating `state`.

    clang's JSON AST omits "file"/"line" when unchanged from the previous
    location *in document order*; macro locations nest the real position
    under expansionLoc.  Returns (file, line) after the update.
    """
    if not isinstance(loc, dict):
        return state["file"], state["line"]
    if "expansionLoc" in loc:
        return _decode_loc(loc["expansionLoc"], state)
    if "file" in loc:
        state["file"] = os.path.realpath(loc["file"])
    if "line" in loc:
        state["line"] = loc["line"]
    return state["file"], state["line"]


def _walk_json(node, state, wanted, extents, parent_name=None):
    if not isinstance(node, dict):
        return
    kind = node.get("kind")
    name = node.get("name")
    scope = parent_name
    if kind in ("CXXRecordDecl", "NamespaceDecl", "ClassTemplateDecl") \
            and name:
        scope = name
    # Document order in clang's JSON is: loc, range.begin, range.end, then
    # the "inner" children — decode in exactly that order so the
    # differential stream stays in sync.
    _decode_loc(node.get("loc"), state)
    rng = node.get("range") or {}
    begin_file, begin_line = _decode_loc(rng.get("begin"), state)
    _, end_line = _decode_loc(rng.get("end"), state)
    if kind in _JSON_FUNC_KINDS and name and begin_file in wanted:
        inner = node.get("inner") or []
        has_body = any(isinstance(c, dict)
                       and c.get("kind") in ("CompoundStmt", "CXXTryStmt")
                       for c in inner)
        if has_body and begin_line and end_line \
                and end_line >= begin_line:
            qual = (f"{scope}::{name}"
                    if scope and scope != "dido" else name)
            extents[(begin_file, begin_line, end_line)] = qual
    for child in node.get("inner") or []:
        _walk_json(child, state, wanted, extents, scope)


def _is_mutex_type(spelling):
    return spelling.split("::")[-1].rstrip(" &") in ("Mutex", "mutex")


def _is_guarded_attr(cursor):
    # guarded_by lowers to an UNEXPOSED_ATTR in older bindings; match by
    # the attribute's source text when the kind is not specific enough.
    import clang.cindex as ci
    if cursor.kind.is_attribute():
        try:
            tokens = " ".join(t.spelling for t in cursor.get_tokens())
        except Exception:
            tokens = cursor.spelling or ""
        return "guarded_by" in tokens or "GUARDED_BY" in tokens
    return False
