#!/usr/bin/env bash
# Static-analysis driver for the dido repository — the single entry point
# CI's static-analysis job runs, and the local equivalent of "is every
# concurrency contract still enforced?".
#
#   tools/analyze.sh [--skip-build]
#
# Runs, in order:
#   1. the dido invariant analyzer (tools/dido_analyze: all seven passes —
#      epoch-pin, fault-point, lock-annotation, hot-path purity,
#      allocation-ownership, response-completeness, memory-order) over the
#      real tree, with --backend auto so libclang / `clang -ast-dump=json`
#      refine the call graph when a compile_commands.json is available
#      (override with DIDO_ANALYZE_BACKEND=text to force the reference
#      backend),
#   2. its fixture self-test (seeded violations must all be caught),
#   3. a Clang -Wthread-safety build (errors) via the thread-safety preset,
#   4. cppcheck over src/ with the committed suppression list.
#
# The old standalone memory-order lint is the analyzer's memorder pass now;
# tools/check_memory_order.py remains as a deprecation shim only.
#
# Steps 3 and 4 are skipped with a notice when clang++/cppcheck are not
# installed (the analyzer and lints are pure Python and always run); CI
# uses an image that has both, so a skip there is a job misconfiguration.

set -u

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
SKIP_BUILD=0
[[ "${1:-}" == "--skip-build" ]] && SKIP_BUILD=1
STATUS=0

note() { printf '== %s\n' "$*"; }

# --------------------------------------------------- dido invariant passes --
note "dido_analyze: all contract passes (backend: ${DIDO_ANALYZE_BACKEND:-auto})"
if command -v python3 >/dev/null 2>&1; then
  python3 -m tools.dido_analyze "$REPO_ROOT" \
    --backend "${DIDO_ANALYZE_BACKEND:-auto}" || STATUS=1

  note "dido_analyze: fixture self-test"
  python3 tests/analyzer_fixtures/run_fixture_test.py "$REPO_ROOT" || STATUS=1
else
  note "FAIL: python3 not found (required for the invariant analyzer)"
  STATUS=1
fi

# ------------------------------------------------- clang thread-safety build --
if [[ $SKIP_BUILD -eq 1 ]]; then
  note "SKIP: thread-safety build (--skip-build)"
elif command -v clang++ >/dev/null 2>&1; then
  note "clang -Wthread-safety build (errors) via the thread-safety preset"
  cmake --preset thread-safety >/dev/null || STATUS=1
  cmake --build --preset thread-safety -j "$(nproc)" || STATUS=1
else
  note "SKIP: clang++ not found (thread-safety analysis needs Clang)"
fi

# ---------------------------------------------------------------- cppcheck --
if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck over src/"
  cppcheck --enable=warning,performance,portability \
    --suppressions-list=tools/cppcheck-suppressions.txt \
    --inline-suppr \
    --error-exitcode=1 \
    --std=c++20 \
    --language=c++ \
    -I src \
    --quiet \
    src || STATUS=1
else
  note "SKIP: cppcheck not found"
fi

if [[ $STATUS -eq 0 ]]; then
  note "analysis clean"
else
  note "analysis FAILED"
fi
exit $STATUS
