#!/usr/bin/env bash
# Static-analysis driver for the dido repository — the single entry point
# CI's static-analysis job runs, and the local equivalent of "is every
# concurrency contract still enforced?".
#
#   tools/analyze.sh [--skip-build]
#
# Runs, in order:
#   1. the dido invariant analyzer (tools/dido_analyze: epoch-pin,
#      fault-point, and lock-annotation passes) over the real tree,
#   2. its fixture self-test (seeded violations must all be caught),
#   3. the memory-order justification lint,
#   4. a Clang -Wthread-safety build (errors) via the thread-safety preset,
#   5. cppcheck over src/ with the committed suppression list.
#
# Steps 4 and 5 are skipped with a notice when clang++/cppcheck are not
# installed (the analyzer and lints are pure Python and always run); CI
# uses an image that has both, so a skip there is a job misconfiguration.

set -u

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
SKIP_BUILD=0
[[ "${1:-}" == "--skip-build" ]] && SKIP_BUILD=1
STATUS=0

note() { printf '== %s\n' "$*"; }

# --------------------------------------------------- dido invariant passes --
note "dido_analyze: epoch-pin / fault-point / lock-annotation passes"
if command -v python3 >/dev/null 2>&1; then
  python3 -m tools.dido_analyze "$REPO_ROOT" || STATUS=1

  note "dido_analyze: fixture self-test"
  python3 tests/analyzer_fixtures/run_fixture_test.py "$REPO_ROOT" || STATUS=1

  note "custom lint: memory_order_relaxed justification"
  python3 tools/check_memory_order.py "$REPO_ROOT" || STATUS=1
else
  note "FAIL: python3 not found (required for the invariant analyzer)"
  STATUS=1
fi

# ------------------------------------------------- clang thread-safety build --
if [[ $SKIP_BUILD -eq 1 ]]; then
  note "SKIP: thread-safety build (--skip-build)"
elif command -v clang++ >/dev/null 2>&1; then
  note "clang -Wthread-safety build (errors) via the thread-safety preset"
  cmake --preset thread-safety >/dev/null || STATUS=1
  cmake --build --preset thread-safety -j "$(nproc)" || STATUS=1
else
  note "SKIP: clang++ not found (thread-safety analysis needs Clang)"
fi

# ---------------------------------------------------------------- cppcheck --
if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck over src/"
  cppcheck --enable=warning,performance,portability \
    --suppressions-list=tools/cppcheck-suppressions.txt \
    --inline-suppr \
    --error-exitcode=1 \
    --std=c++20 \
    --language=c++ \
    -I src \
    --quiet \
    src || STATUS=1
else
  note "SKIP: cppcheck not found"
fi

if [[ $STATUS -eq 0 ]]; then
  note "analysis clean"
else
  note "analysis FAILED"
fi
exit $STATUS
