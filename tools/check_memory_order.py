#!/usr/bin/env python3
"""DEPRECATED shim: the memory-order lint now lives in tools/dido_analyze.

The standalone checker was folded into the invariant analyzer as its
`memorder` pass (ISSUE 7), where it shares the file-discovery and
suppression machinery (`dido-analyze: allow(memorder): <reason>` now works
alongside the original justifying-'relaxed'-comment convention).  This
shim keeps the old entry point alive for scripts and muscle memory:

    python3 tools/check_memory_order.py [repo-root]
        ==  python3 -m tools.dido_analyze [repo-root] --pass memorder

Exit status is unchanged: 0 clean, 1 violations, 2 usage error.
"""

import sys
from pathlib import Path


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    print(
        "check_memory_order: deprecated — running "
        "`python3 -m tools.dido_analyze --pass memorder` instead; "
        "switch callers to the analyzer.",
        file=sys.stderr,
    )
    # The package import needs the repo root (the directory holding
    # tools/) on sys.path; resolve it from this file, not the argument,
    # so the shim works from any CWD.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from tools.dido_analyze.__main__ import main as analyze_main

    return analyze_main([root, "--pass", "memorder"])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
