#!/usr/bin/env python3
"""Custom lint: no unjustified std::memory_order_relaxed on hot paths.

DIDO's correctness rests on the CPU/GPU work-stealing tag array and the
inter-stage batch queues; a silently-downgraded memory order there is
exactly the class of bug a reviewer cannot see locally.  This check
forbids `memory_order_relaxed` in the audited hot-path files unless the
use is justified by a nearby comment containing the word "relaxed"
(same line, or a comment within the preceding JUSTIFICATION_WINDOW
lines) — forcing every downgrade to carry its reasoning in the source.

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import re
import sys
from pathlib import Path

# Hot-path files under audit (repo-relative).  Extend this list when new
# lock-free components appear.
AUDITED_FILES = [
    "src/pipeline/work_stealing.h",
    "src/pipeline/work_stealing.cc",
    "src/live/live_pipeline.h",
    "src/live/live_pipeline.cc",
    "src/mem/kv_object.h",
    "src/sync/epoch.h",
    "src/sync/epoch.cc",
    "src/faults/fault_registry.h",
    "src/faults/fault_registry.cc",
    "src/obs/metrics.h",
    "src/obs/metrics.cc",
    "src/obs/trace.h",
    "src/obs/trace.cc",
    "src/obs/drift.h",
    "src/obs/drift.cc",
]

JUSTIFICATION_WINDOW = 10  # lines of lookback for a justifying comment

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
COMMENT_RE = re.compile(r"//(.*)$")


def line_has_justification(line: str) -> bool:
    match = COMMENT_RE.search(line)
    return match is not None and "relaxed" in match.group(1).lower()


def check_file(path: Path) -> list:
    violations = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not RELAXED_RE.search(line):
            continue
        # A justifying comment may sit on the offending line itself...
        if line_has_justification(line):
            continue
        # ...or in the lookback window above it.
        window = lines[max(0, i - JUSTIFICATION_WINDOW) : i]
        if any(line_has_justification(prev) for prev in window):
            continue
        violations.append((i + 1, line.strip()))
    return violations


def main(argv: list) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    if not (root / "src").is_dir():
        print(f"check_memory_order: '{root}' is not the repo root", file=sys.stderr)
        return 2
    failed = False
    for rel in AUDITED_FILES:
        path = root / rel
        if not path.exists():
            print(f"check_memory_order: audited file missing: {rel}", file=sys.stderr)
            failed = True
            continue
        for line_no, text in check_file(path):
            failed = True
            print(
                f"{rel}:{line_no}: memory_order_relaxed without a "
                f"justifying 'relaxed' comment within "
                f"{JUSTIFICATION_WINDOW} lines:\n    {text}"
            )
    if failed:
        print(
            "\ncheck_memory_order: every relaxed atomic on a hot path must "
            "explain why the downgrade is safe (search DESIGN.md for "
            "'memory order')."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
