#!/usr/bin/env python3
"""Custom lint: no unjustified std::memory_order_relaxed on hot paths.

DIDO's correctness rests on the CPU/GPU work-stealing tag array and the
inter-stage batch queues; a silently-downgraded memory order there is
exactly the class of bug a reviewer cannot see locally.  This check
forbids `memory_order_relaxed` in the audited files unless the use is
justified by a nearby comment containing the word "relaxed" (same line,
or a comment within the preceding JUSTIFICATION_WINDOW lines) — forcing
every downgrade to carry its reasoning in the source.

The audit set is discovered, not maintained: every src/**/*.h and
src/**/*.cc that mentions `std::atomic` or `memory_order` is audited
automatically, so a new lock-free component cannot dodge the check by
not being on a list.  Files with a reason to be exempt go in OPT_OUT
with that reason.

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import re
import sys
from pathlib import Path

# Repo-relative paths excluded from the audit, each with its reason.
# Keep this list short: an entry here is a standing waiver.
OPT_OUT = {
    # (no current opt-outs — every atomic-bearing file justifies its
    # relaxed uses; add "src/path/file.cc": "reason" entries sparingly)
}

JUSTIFICATION_WINDOW = 10  # lines of lookback for a justifying comment

# NOTE: `std::atomic|memory_order`, not \b-anchored `memory_order\b` —
# the latter fails to match `memory_order_relaxed` itself.
DISCOVERY_RE = re.compile(r"std::atomic|memory_order")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
COMMENT_RE = re.compile(r"//(.*)$")


def discover_audited_files(root: Path) -> list:
    """Every src/**/*.{h,cc} using atomics, minus the opt-out list."""
    audited = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc") or not path.is_file():
            continue
        rel = str(path.relative_to(root))
        if rel in OPT_OUT_NORMALIZED:
            continue
        if DISCOVERY_RE.search(path.read_text(encoding="utf-8")):
            audited.append(rel)
    return audited


OPT_OUT_NORMALIZED = {str(Path(p)) for p in OPT_OUT}


def line_has_justification(line: str) -> bool:
    match = COMMENT_RE.search(line)
    return match is not None and "relaxed" in match.group(1).lower()


def check_file(path: Path) -> list:
    violations = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not RELAXED_RE.search(line):
            continue
        # A justifying comment may sit on the offending line itself...
        if line_has_justification(line):
            continue
        # ...or in the lookback window above it.
        window = lines[max(0, i - JUSTIFICATION_WINDOW) : i]
        if any(line_has_justification(prev) for prev in window):
            continue
        violations.append((i + 1, line.strip()))
    return violations


def main(argv: list) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    if not (root / "src").is_dir():
        print(f"check_memory_order: '{root}' is not the repo root", file=sys.stderr)
        return 2
    failed = False
    # A stale opt-out entry is itself an error: waivers must not outlive
    # the file they waived.
    for rel in sorted(OPT_OUT_NORMALIZED):
        if not (root / rel).exists():
            print(f"check_memory_order: opt-out entry for missing file: {rel}",
                  file=sys.stderr)
            failed = True
    audited = discover_audited_files(root)
    if not audited:
        print("check_memory_order: discovery found no atomic-bearing files "
              "under src/ — that cannot be right", file=sys.stderr)
        return 2
    for rel in audited:
        for line_no, text in check_file(root / rel):
            failed = True
            print(
                f"{rel}:{line_no}: memory_order_relaxed without a "
                f"justifying 'relaxed' comment within "
                f"{JUSTIFICATION_WINDOW} lines:\n    {text}"
            )
    if failed:
        print(
            "\ncheck_memory_order: every relaxed atomic on a hot path must "
            "explain why the downgrade is safe (search DESIGN.md for "
            "'memory order')."
        )
        return 1
    print(f"check_memory_order: clean ({len(audited)} files audited, "
          f"{len(OPT_OUT)} opted out)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
